package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"iselgen/internal/core"
	"iselgen/internal/isa"
	"iselgen/internal/term"
)

// svcSpec is a small single-width ISA, rich enough that the benchmark
// corpus yields both index-proven and SMT-proven rules, small enough
// that a full synthesis runs in well under a second.
const svcSpec = `
inst ADDrr(rn: reg64, rm: reg64) { rd = rn + rm; }
inst SUBrr(rn: reg64, rm: reg64) { rd = rn - rm; }
inst ADDri(rn: reg64, imm: imm12) { rd = rn + zext(imm, 64); }
inst LSLri(rn: reg64, sh: imm6) { rd = rn << zext(sh, 64); }
inst ANDrr(rn: reg64, rm: reg64) { rd = rn & rm; }
inst ORNrr(rn: reg64, rm: reg64) { rd = rn | ~rm; }
inst MVNr(rm: reg64) { rd = ~rm; }
inst MULrr(rn: reg64, rm: reg64) { rd = rn * rm; }
inst MOVZ(imm: imm16) { rd = zext(imm, 64); }
`

func testConfig() Config {
	return Config{
		Workers:     2,
		QueueDepth:  4,
		Synth:       core.Config{TestInputs: 16, Workers: 2, SMTMaxConflicts: 64},
		MaxPatterns: 10,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	sv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(func() {
		ts.Close()
		sv.Close()
	})
	return sv, ts
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func getMetrics(t *testing.T, base string) MetricsSnapshot {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func decodeSynth(t *testing.T, body []byte) SynthesizeResponse {
	t.Helper()
	var sr SynthesizeResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("bad synthesize response %s: %v", body, err)
	}
	return sr
}

// TestSingleflightConcurrent is acceptance (a): two concurrent
// synthesize requests for the same target run synthesis exactly once,
// and both get the library.
func TestSingleflightConcurrent(t *testing.T) {
	sv, ts := newTestServer(t, testConfig())
	gate := make(chan struct{})
	sv.testJobGate = func() { <-gate }

	req := SynthesizeRequest{Target: "mini", Spec: svcSpec}
	type result struct {
		status int
		resp   SynthesizeResponse
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			status, body := postJSON(t, ts.URL+"/v1/synthesize", req)
			results <- result{status, decodeSynth(t, body)}
		}()
	}

	// Wait until one request owns the (gated) job and the other has
	// joined its flight, then let the job run.
	deadline := time.Now().Add(10 * time.Second)
	for getMetrics(t, ts.URL).Joins < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never joined the in-flight synthesis")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(gate)

	var got [2]result
	for i := range got {
		got[i] = <-results
	}
	caches := map[string]int{}
	for _, g := range got {
		if g.status != http.StatusOK {
			t.Fatalf("status %d, want 200", g.status)
		}
		if g.resp.Rules == 0 {
			t.Error("empty library returned")
		}
		if g.resp.Partial {
			t.Error("unexpected partial result")
		}
		caches[g.resp.Cache]++
	}
	if got[0].resp.Fingerprint != got[1].resp.Fingerprint {
		t.Errorf("fingerprints differ: %s vs %s", got[0].resp.Fingerprint, got[1].resp.Fingerprint)
	}
	if caches["miss"] != 1 || caches["join"] != 1 {
		t.Errorf("cache paths = %v, want one miss and one join", caches)
	}
	if m := getMetrics(t, ts.URL); m.SynthRuns != 1 {
		t.Errorf("synthesis ran %d times, want exactly 1", m.SynthRuns)
	}
}

// TestCacheHitAndMetrics is acceptance (b) and (e): a second request
// after completion is a cache hit served without re-synthesis, and the
// metrics endpoint reports a nonzero hit count and per-stage timings.
func TestCacheHitAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	req := SynthesizeRequest{Target: "mini", Spec: svcSpec}

	status, body := postJSON(t, ts.URL+"/v1/synthesize", req)
	if status != http.StatusOK {
		t.Fatalf("first request: status %d: %s", status, body)
	}
	first := decodeSynth(t, body)
	if first.Cache != "miss" {
		t.Errorf("first request cache = %q, want miss", first.Cache)
	}

	status, body = postJSON(t, ts.URL+"/v1/synthesize", req)
	if status != http.StatusOK {
		t.Fatalf("second request: status %d: %s", status, body)
	}
	second := decodeSynth(t, body)
	if second.Cache != "hit" {
		t.Errorf("second request cache = %q, want hit", second.Cache)
	}
	if second.Rules != first.Rules || second.Fingerprint != first.Fingerprint {
		t.Errorf("cache hit returned a different library: %+v vs %+v", second, first)
	}

	m := getMetrics(t, ts.URL)
	if m.SynthRuns != 1 {
		t.Errorf("synth_runs = %d, want 1 (second request must not re-synthesize)", m.SynthRuns)
	}
	if m.CacheHits == 0 {
		t.Error("cache_hits = 0 after a served hit")
	}
	if m.CachedEntries != 1 {
		t.Errorf("cached_entries = %d, want 1", m.CachedEntries)
	}
	if m.Stages.InstrGenNS <= 0 || m.Stages.EvalNS <= 0 || m.Stages.LookupWallNS <= 0 {
		t.Errorf("per-stage timings not reported: %+v", m.Stages)
	}
	if m.Stages.Sequences == 0 || m.Stages.Patterns == 0 {
		t.Errorf("per-stage counters not reported: %+v", m.Stages)
	}
}

// TestDeadlinePartial is acceptance (c): a deadline-limited request
// still answers 200 with partial=true and only index-proven rules (the
// solver is never consulted once the budget is spent).
func TestDeadlinePartial(t *testing.T) {
	cfg := testConfig()
	cfg.MaxPatterns = 0 // full corpus, so seed patterns are included
	// Pool construction runs under the job deadline; holding stage 1 past
	// the 1ms budget guarantees the wave loop starts with the deadline
	// already expired — deterministic degradation. (Stage 1 used to burn
	// the budget by itself via eager test evaluation; digests are lazy
	// now, so the stall is explicit.)
	cfg.Synth.ExtraSequences = func(b *term.Builder, tgt *isa.Target) []*isa.Sequence {
		time.Sleep(10 * time.Millisecond)
		return nil
	}
	_, ts := newTestServer(t, cfg)

	req := SynthesizeRequest{Target: "mini", Spec: svcSpec, TimeoutMS: 1}
	status, body := postJSON(t, ts.URL+"/v1/synthesize", req)
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", status, body)
	}
	sr := decodeSynth(t, body)
	if !sr.Partial {
		t.Fatal("deadline-limited request did not report partial=true")
	}
	if sr.Rules == 0 {
		t.Error("partial library has no rules; index-proven rules expected")
	}
	if n := sr.BySource["smt"]; n != 0 {
		t.Errorf("partial library contains %d smt rules, want none", n)
	}
	if sr.BySource["index"] != sr.Rules {
		t.Errorf("by_source %v does not account for all %d rules as index-proven", sr.BySource, sr.Rules)
	}
	if sr.Stats.SMTQueries != 0 {
		t.Errorf("solver consulted %d times under an expired budget", sr.Stats.SMTQueries)
	}
	m := getMetrics(t, ts.URL)
	if m.PartialResults != 1 {
		t.Errorf("partial_results = %d, want 1", m.PartialResults)
	}
	if m.CachedEntries != 0 {
		t.Errorf("partial result was cached (%d entries); partial entries must never be cached", m.CachedEntries)
	}
}

// TestQueueFullBackpressure is acceptance (d): with one busy worker and
// a single queue slot occupied, the next synthesis request answers 429.
func TestQueueFullBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	sv, ts := newTestServer(t, cfg)

	started := make(chan struct{}, 3)
	release := make(chan struct{})
	var once sync.Once
	releaseAll := func() { once.Do(func() { close(release) }) }
	sv.testJobGate = func() {
		started <- struct{}{}
		<-release
	}
	// Unblock gated jobs even on a failing path: Cleanup drains the
	// scheduler and would otherwise hang on them.
	defer releaseAll()

	specFor := func(i int) SynthesizeRequest {
		return SynthesizeRequest{Target: fmt.Sprintf("t%d", i), Spec: svcSpec}
	}
	done := make(chan int, 2)
	go func() {
		status, _ := postJSON(t, ts.URL+"/v1/synthesize", specFor(1))
		done <- status
	}()
	<-started // job 1 occupies the only worker

	go func() {
		status, _ := postJSON(t, ts.URL+"/v1/synthesize", specFor(2))
		done <- status
	}()
	// Wait for job 2 to be sitting in the (now full) queue.
	deadline := time.Now().Add(10 * time.Second)
	for getMetrics(t, ts.URL).QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second job never queued")
		}
		time.Sleep(2 * time.Millisecond)
	}

	status, body := postJSON(t, ts.URL+"/v1/synthesize", specFor(3))
	if status != http.StatusTooManyRequests {
		t.Fatalf("full queue answered %d, want 429: %s", status, body)
	}
	if !strings.Contains(string(body), "queue full") {
		t.Errorf("429 body does not explain backpressure: %s", body)
	}
	if m := getMetrics(t, ts.URL); m.JobsRejected != 1 {
		t.Errorf("jobs_rejected = %d, want 1", m.JobsRejected)
	}

	releaseAll()
	for i := 0; i < 2; i++ {
		if status := <-done; status != http.StatusOK {
			t.Errorf("blocked request %d finished with status %d, want 200", i, status)
		}
	}
}

// TestDiskLayer proves the persistence round-trip end to end: a second
// server sharing the cache directory serves the artifact from disk
// (re-verified on load) without running synthesis.
func TestDiskLayer(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.CacheDir = dir

	_, ts1 := newTestServer(t, cfg)
	req := SynthesizeRequest{Target: "mini", Spec: svcSpec}
	status, body := postJSON(t, ts1.URL+"/v1/synthesize", req)
	if status != http.StatusOK {
		t.Fatalf("seed synthesis: status %d: %s", status, body)
	}
	first := decodeSynth(t, body)

	_, ts2 := newTestServer(t, cfg)
	status, body = postJSON(t, ts2.URL+"/v1/synthesize", req)
	if status != http.StatusOK {
		t.Fatalf("disk load: status %d: %s", status, body)
	}
	second := decodeSynth(t, body)
	if second.Cache != "disk" {
		t.Errorf("cache = %q, want disk", second.Cache)
	}
	if second.Rules != first.Rules {
		t.Errorf("disk layer returned %d rules, synthesis produced %d", second.Rules, first.Rules)
	}
	m := getMetrics(t, ts2.URL)
	if m.SynthRuns != 0 || m.DiskHits != 1 {
		t.Errorf("synth_runs=%d disk_hits=%d, want 0 and 1", m.SynthRuns, m.DiskHits)
	}
}

// TestSelectEndpoint lowers a benchmark workload through a synthesized
// builtin backend and checks the simulator stats come back.
func TestSelectEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("full riscv synthesis in short mode")
	}
	cfg := testConfig()
	cfg.Synth = core.Config{Workers: 4}
	cfg.MaxPatterns = 0
	_, ts := newTestServer(t, cfg)

	req := SelectRequest{Target: "riscv", Workload: "x264_sad", Emit: "mir"}
	status, body := postJSON(t, ts.URL+"/v1/select", req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var sel SelectResponse
	if err := json.Unmarshal(body, &sel); err != nil {
		t.Fatalf("bad select response: %v", err)
	}
	if sel.Fallback {
		t.Fatalf("selection fell back: %s", sel.FallbackReason)
	}
	if sel.RuleInsts == 0 {
		t.Error("no instructions covered by synthesized rules")
	}
	if sel.Cycles == 0 || sel.Insts == 0 {
		t.Errorf("simulator stats missing: cycles=%d insts=%d", sel.Cycles, sel.Insts)
	}
	if sel.Checksum == "" || sel.MIR == "" {
		t.Error("checksum or emitted MIR missing")
	}
	// A second select reuses the cached library.
	status, body = postJSON(t, ts.URL+"/v1/select", SelectRequest{Target: "riscv", Workload: "mcf_relax"})
	if status != http.StatusOK {
		t.Fatalf("second select: status %d: %s", status, body)
	}
	if m := getMetrics(t, ts.URL); m.SynthRuns != 1 || m.CacheHits != 1 || m.Selections != 2 {
		t.Errorf("synth_runs=%d cache_hits=%d selections=%d, want 1/1/2", m.SynthRuns, m.CacheHits, m.Selections)
	}

	// emit="bytes" assembles the selection through the spec-derived
	// encoder: hex code plus a decoded listing, one line per instruction.
	status, body = postJSON(t, ts.URL+"/v1/select",
		SelectRequest{Target: "riscv", Workload: "x264_sad", Emit: "bytes"})
	if status != http.StatusOK {
		t.Fatalf("emit=bytes: status %d: %s", status, body)
	}
	sel = SelectResponse{}
	if err := json.Unmarshal(body, &sel); err != nil {
		t.Fatalf("bad emit=bytes response: %v", err)
	}
	if sel.Bytes == "" || len(sel.Listing) == 0 {
		t.Fatalf("emit=bytes returned no code: bytes=%q listing=%d", sel.Bytes, len(sel.Listing))
	}
	if len(sel.Bytes)%2 != 0 {
		t.Errorf("bytes is not even-length hex: %q", sel.Bytes)
	}
	if sel.MIR != "" {
		t.Error("emit=bytes also returned MIR text")
	}

	// The legacy boolean emit form still means "mir".
	status, body = postJSON(t, ts.URL+"/v1/select",
		map[string]any{"target": "riscv", "workload": "x264_sad", "emit": true})
	if status != http.StatusOK {
		t.Fatalf("emit=true: status %d: %s", status, body)
	}
	sel = SelectResponse{}
	if err := json.Unmarshal(body, &sel); err != nil {
		t.Fatalf("bad emit=true response: %v", err)
	}
	if sel.MIR == "" || sel.Bytes != "" {
		t.Errorf("legacy emit=true: mir=%d bytes=%q, want MIR only", len(sel.MIR), sel.Bytes)
	}

	// An unknown emit mode is a 400.
	status, body = postJSON(t, ts.URL+"/v1/select",
		map[string]any{"target": "riscv", "workload": "x264_sad", "emit": "elf"})
	if status != http.StatusBadRequest {
		t.Errorf("emit=elf: status %d, want 400 (%s)", status, body)
	}
}

// TestBadRequests exercises the error paths: unknown target, malformed
// inline spec, unknown workload, select on a backend-less target.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	cases := []struct {
		path string
		body any
	}{
		{"/v1/synthesize", SynthesizeRequest{Target: "pdp11"}},
		{"/v1/synthesize", SynthesizeRequest{}},
		{"/v1/synthesize", SynthesizeRequest{Target: "aarch64", Spec: "inst bad { }"}},
		{"/v1/synthesize", SynthesizeRequest{Spec: "inst Broken(rn: reg64) { rd = rn +; }"}},
		{"/v1/select", SelectRequest{Target: "x86", Workload: "x264_sad"}},
		{"/v1/select", SelectRequest{Target: "riscv", Workload: "nope"}},
	}
	for _, c := range cases {
		status, body := postJSON(t, ts.URL+c.path, c.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s %+v: status %d, want 400 (%s)", c.path, c.body, status, body)
		}
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

// TestSelectorCacheIsolation exercises the selector knob on /v1/select:
// greedy and optimal requests for the same target must key distinct
// cache entries (the selector and cost-table version are part of the
// library fingerprint), the optimal response must carry the cost
// metadata, and its static cost must not exceed greedy's.
func TestSelectorCacheIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("full riscv synthesis in short mode")
	}
	cfg := testConfig()
	cfg.Synth = core.Config{Workers: 4}
	cfg.MaxPatterns = 0
	_, ts := newTestServer(t, cfg)

	sel := func(selector string) SelectResponse {
		t.Helper()
		status, body := postJSON(t, ts.URL+"/v1/select",
			SelectRequest{Target: "riscv", Workload: "x264_sad", Selector: selector})
		if status != http.StatusOK {
			t.Fatalf("selector=%q: status %d: %s", selector, status, body)
		}
		var r SelectResponse
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatalf("selector=%q: bad response: %v", selector, err)
		}
		if r.Fallback {
			t.Fatalf("selector=%q fell back: %s", selector, r.FallbackReason)
		}
		return r
	}

	greedy := sel("greedy")
	optimal := sel("optimal")

	if greedy.Selector != "greedy" || optimal.Selector != "optimal" {
		t.Errorf("selector echo: greedy=%q optimal=%q", greedy.Selector, optimal.Selector)
	}
	if greedy.Fingerprint == optimal.Fingerprint {
		t.Errorf("greedy and optimal share fingerprint %s; selector must isolate cache entries", greedy.Fingerprint)
	}
	if optimal.CostVersion == "" || optimal.CostVersion == "-" {
		t.Errorf("optimal response missing cost-table version: %q", optimal.CostVersion)
	}
	if optimal.StaticCost == "" || greedy.StaticCost == "" {
		t.Fatalf("static cost missing: greedy=%q optimal=%q", greedy.StaticCost, optimal.StaticCost)
	}
	var gl, gs, ol, osz int64
	if _, err := fmt.Sscanf(greedy.StaticCost, "%d,%d", &gl, &gs); err != nil {
		t.Fatalf("bad greedy static cost %q: %v", greedy.StaticCost, err)
	}
	if _, err := fmt.Sscanf(optimal.StaticCost, "%d,%d", &ol, &osz); err != nil {
		t.Fatalf("bad optimal static cost %q: %v", optimal.StaticCost, err)
	}
	if ol > gl || (ol == gl && osz > gs) {
		t.Errorf("optimal static cost %s exceeds greedy %s", optimal.StaticCost, greedy.StaticCost)
	}

	// Distinct cache entries: two synth runs, and repeating a selector
	// hits its own entry.
	if m := getMetrics(t, ts.URL); m.SynthRuns != 2 {
		t.Errorf("synth_runs=%d, want 2 (one per selector)", m.SynthRuns)
	}
	again := sel("optimal")
	if again.Fingerprint != optimal.Fingerprint {
		t.Errorf("repeat optimal fingerprint %s != %s", again.Fingerprint, optimal.Fingerprint)
	}
	if m := getMetrics(t, ts.URL); m.SynthRuns != 2 || m.CacheHits == 0 {
		t.Errorf("after repeat: synth_runs=%d cache_hits=%d, want 2 runs and a hit", m.SynthRuns, m.CacheHits)
	}

	// Unknown selector is a client error.
	status, body := postJSON(t, ts.URL+"/v1/select",
		SelectRequest{Target: "riscv", Workload: "x264_sad", Selector: "simulated-annealing"})
	if status != http.StatusBadRequest {
		t.Errorf("unknown selector: status %d, want 400 (%s)", status, body)
	}
}
