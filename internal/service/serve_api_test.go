package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// apiProg is a fixed straight-line program in the fuzz corpus text form.
const apiProg = "v0 = param 64\nv1 = param 64\nv2 = add 64 v0 v1\nv3 = add 64 v2 v0\nret v3\n"

// TestSelectEmitLegacyBooleanCompat pins the wire compatibility of the
// select emit knob: the legacy boolean forms must keep working verbatim
// alongside the string modes.
func TestSelectEmitLegacyBooleanCompat(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	cases := []struct {
		emit    any
		wantMIR bool
	}{
		{true, true},
		{false, false},
		{"mir", true},
		{"", false},
		{nil, false},
	}
	for _, tc := range cases {
		body := map[string]any{"target": "riscv", "program": apiProg}
		if tc.emit != nil {
			body["emit"] = tc.emit
		}
		status, raw := postJSON(t, ts.URL+"/v1/select", body)
		if status != http.StatusOK {
			t.Fatalf("emit=%v: status %d: %s", tc.emit, status, raw)
		}
		var sr SelectResponse
		if err := json.Unmarshal(raw, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Fallback {
			t.Fatalf("emit=%v: selection fell back: %s", tc.emit, sr.FallbackReason)
		}
		if got := sr.MIR != ""; got != tc.wantMIR {
			t.Fatalf("emit=%v: mir present=%v, want %v", tc.emit, got, tc.wantMIR)
		}
	}
	// Unknown emit strings stay a 400, not a silent default.
	status, raw := postJSON(t, ts.URL+"/v1/select",
		map[string]any{"target": "riscv", "program": apiProg, "emit": "asm"})
	if status != http.StatusBadRequest {
		t.Fatalf("emit=asm answered %d (%s), want 400", status, raw)
	}
}

// TestBatchSelect drives /v1/select/batch: per-program results in
// order, deterministic across identical requests, and consistent with
// the single-program endpoint.
func TestBatchSelect(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	req := BatchSelectRequest{
		Target:     "riscv",
		Programs:   []string{apiProg, "v0 = param 64\nv1 = param 64\nv2 = add 64 v1 v0\nret v2\n", "this is not a program"},
		VectorSeed: 7,
		Vectors:    2,
	}
	status, body := postJSON(t, ts.URL+"/v1/select/batch", req)
	if status != http.StatusOK {
		t.Fatalf("batch: %d %s", status, body)
	}
	var br BatchSelectResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Programs != 3 || len(br.Results) != 3 {
		t.Fatalf("programs=%d results=%d, want 3", br.Programs, len(br.Results))
	}
	if br.Failed != 1 || br.Results[2].Error == "" {
		t.Fatalf("malformed program not reported: failed=%d results[2]=%+v", br.Failed, br.Results[2])
	}
	if br.Selected != 2 || br.Results[0].Error != "" || br.Results[1].Error != "" {
		t.Fatalf("valid programs failed: %+v", br.Results)
	}
	if len(br.Results[0].Checksums) == 0 {
		t.Fatal("no simulation checksums for program 0")
	}

	// Deterministic on repeat: apart from the cache field (miss vs hit,
	// per-replica acquisition provenance), the body is byte-identical.
	status2, body2 := postJSON(t, ts.URL+"/v1/select/batch", req)
	if status2 != http.StatusOK {
		t.Fatalf("second batch: %d", status2)
	}
	norm := func(b []byte) string {
		var m map[string]json.RawMessage
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "cache")
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	if a, b := norm(body), norm(body2); a != b {
		t.Fatalf("batch not deterministic:\n%s\n---\n%s", a, b)
	}

	// The single-program endpoint agrees with the batch element.
	status, single := postJSON(t, ts.URL+"/v1/select",
		SelectRequest{Target: "riscv", Program: apiProg, VectorSeed: 7})
	if status != http.StatusOK {
		t.Fatalf("single select: %d %s", status, single)
	}
	var sr SelectResponse
	if err := json.Unmarshal(single, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Checksum != br.Results[0].Checksums[0] || sr.StaticCost != br.Results[0].StaticCost {
		t.Fatalf("single (%s, %s) and batch (%v, %s) disagree",
			sr.Checksum, sr.StaticCost, br.Results[0].Checksums, br.Results[0].StaticCost)
	}

	m := getMetrics(t, ts.URL)
	if m.BatchPrograms != 6 {
		t.Fatalf("batch_programs=%d, want 6", m.BatchPrograms)
	}
}

// TestBatchSelectRejects pins the batch endpoint's validation.
func TestBatchSelectRejects(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	for _, tc := range []struct {
		req  BatchSelectRequest
		want int
	}{
		{BatchSelectRequest{Target: "riscv"}, http.StatusBadRequest},
		{BatchSelectRequest{Target: "x86", Programs: []string{apiProg}}, http.StatusBadRequest},
		{BatchSelectRequest{Target: "riscv", Programs: []string{apiProg}, Emit: "bytes"}, http.StatusBadRequest},
		{BatchSelectRequest{Target: "riscv", Programs: []string{apiProg}, Selector: "annealing"}, http.StatusBadRequest},
	} {
		status, body := postJSON(t, ts.URL+"/v1/select/batch", tc.req)
		if status != tc.want {
			t.Fatalf("%+v: got %d (%s), want %d", tc.req, status, body, tc.want)
		}
	}
}

// TestJobsLifecycle walks the async API: submit, poll to completion,
// verify the result matches the synchronous endpoint, and check the
// list and unknown-ID surfaces.
func TestJobsLifecycle(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	status, body := postJSON(t, ts.URL+"/v1/jobs", SynthesizeRequest{Target: "mini", Spec: svcSpec})
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", status, body)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || sub.Poll != "/v1/jobs/"+sub.ID {
		t.Fatalf("bad submit response: %+v", sub)
	}

	var st JobStatus
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + sub.Poll)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Status == JobDone || st.Status == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Status != JobDone || st.Result == nil || st.Result.Rules == 0 {
		t.Fatalf("job finished badly: %+v", st)
	}

	// The synchronous endpoint answers from the cache the job filled.
	status, body = postJSON(t, ts.URL+"/v1/synthesize", SynthesizeRequest{Target: "mini", Spec: svcSpec})
	if status != http.StatusOK {
		t.Fatalf("synth after job: %d", status)
	}
	sr := decodeSynth(t, body)
	if sr.Cache != "hit" || sr.Rules != st.Result.Rules {
		t.Fatalf("sync answer cache=%q rules=%d, want hit with %d rules", sr.Cache, sr.Rules, st.Result.Rules)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != sub.ID {
		t.Fatalf("job list: %+v", list.Jobs)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job answered %d, want 404", resp.StatusCode)
	}
}

// TestJobsSaturation: past MaxJobs the submit endpoint answers 429
// instead of queueing unboundedly.
func TestJobsSaturation(t *testing.T) {
	cfg := testConfig()
	cfg.MaxJobs = 1
	sv, ts := newTestServer(t, cfg)
	gate := make(chan struct{})
	sv.testJobGate = func() { <-gate }
	defer close(gate)

	status, _ := postJSON(t, ts.URL+"/v1/jobs", SynthesizeRequest{Target: "mini", Spec: svcSpec})
	if status != http.StatusAccepted {
		t.Fatalf("first submit: %d", status)
	}
	status, body := postJSON(t, ts.URL+"/v1/jobs", SynthesizeRequest{Target: "mini", Spec: svcSpec})
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated submit answered %d (%s), want 429", status, body)
	}
}

// TestShutdownDrainsJobs: Shutdown blocks until in-flight async work
// finishes, then refuses new submissions.
func TestShutdownDrainsJobs(t *testing.T) {
	sv, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := newLocalTS(t, sv)
	gate := make(chan struct{})
	sv.testJobGate = func() { <-gate }

	status, _ := postJSON(t, ts+"/v1/jobs", SynthesizeRequest{Target: "mini", Spec: svcSpec})
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d", status)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- sv.Shutdown(ctx)
	}()
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned %v before the job drained", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if n := sv.jobs.activeCount(); n != 0 {
		t.Fatalf("%d jobs still active after Shutdown", n)
	}

	// A shutting-down server refuses new async work.
	status, _ = postJSON(t, ts+"/v1/jobs", SynthesizeRequest{Target: "mini", Spec: svcSpec})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submit answered %d, want 503", status)
	}
	sv.Close()
}

// newLocalTS serves a Server without the newTestServer cleanup (for
// tests that manage the server's lifecycle themselves).
func newLocalTS(t *testing.T, sv *Server) string {
	t.Helper()
	hs := &http.Server{Handler: sv.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	return "http://" + ln.Addr().String()
}

// TestStoreLRUConcurrentEviction hammers a small-capacity store with
// parallel fills and lookups: the cap must hold, nothing may deadlock,
// and (under -race) the bookkeeping must be clean.
func TestStoreLRUConcurrentEviction(t *testing.T) {
	s, err := NewStore("", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				fp := fmt.Sprintf("fp-%d", (g*7+i)%32)
				if e, fl, owner := s.Acquire(fp); e == nil {
					if owner {
						s.Complete(fp, &Entry{Fingerprint: fp, Origin: "synthesized"}, nil)
					} else {
						ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
						fl.Wait(ctx)
						cancel()
					}
				}
				s.Peek(fp)
			}
		}(g)
	}
	wg.Wait()
	if n := s.MemLen(); n > 4 {
		t.Fatalf("memory layer holds %d entries past cap 4", n)
	}
	if s.Evictions() == 0 {
		t.Fatal("no evictions recorded under churn past the cap")
	}
}

// recordingFiller captures the FillRequests the server issues and
// always declines, forcing the local path.
type recordingFiller struct {
	mu   sync.Mutex
	reqs []FillRequest
}

func (f *recordingFiller) FetchArtifact(ctx context.Context, req FillRequest) (*RemoteFill, error) {
	f.mu.Lock()
	f.reqs = append(f.reqs, req)
	f.mu.Unlock()
	return nil, ErrLocalFill
}

// TestRequestIDPropagatedToPeerFill: the caller's X-Request-Id reaches
// the remote filler (and thence the peer's access log), and unsafe IDs
// are replaced rather than forwarded.
func TestRequestIDPropagatedToPeerFill(t *testing.T) {
	sv, ts := newTestServer(t, testConfig())
	rec := &recordingFiller{}
	sv.SetFiller(rec)

	buf, _ := json.Marshal(SynthesizeRequest{Target: "mini", Spec: svcSpec})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/synthesize", bytes.NewReader(buf))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "trace-abc.123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "trace-abc.123" {
		t.Fatalf("response X-Request-Id=%q, want the caller's", got)
	}
	rec.mu.Lock()
	n := len(rec.reqs)
	var rid string
	if n > 0 {
		rid = rec.reqs[0].RequestID
	}
	rec.mu.Unlock()
	if n != 1 || rid != "trace-abc.123" {
		t.Fatalf("filler saw %d requests, rid=%q; want 1 with the caller's id", n, rid)
	}

	// A header that fails sanitization is replaced with a minted ID, not
	// forwarded.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/synthesize", bytes.NewReader(buf))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "evil id with spaces!")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); !strings.HasPrefix(got, "req-") {
		t.Fatalf("unsafe header echoed back as %q", got)
	}
}
