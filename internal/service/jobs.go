package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"iselgen/internal/obs"
)

// Job statuses: queued → running → done | failed. A job is "queued"
// only for the instant between admission and its goroutine starting;
// the real queueing happens inside the scheduler the job's synthesis is
// submitted to.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// defaultMaxJobs caps concurrently admitted async jobs when the config
// leaves MaxJobs zero.
const defaultMaxJobs = 64

// finishedJobsKept bounds the completed-job history available to
// polling; the oldest finished jobs are pruned past it.
const finishedJobsKept = 256

// JobStatus is the JSON shape of one async job, answered by GET
// /v1/jobs/{id} (and, element-wise, GET /v1/jobs). ElapsedMS counts
// from submission until completion (or until now, for live jobs) — the
// progress-polling signal alongside Status.
type JobStatus struct {
	ID        string              `json:"id"`
	Kind      string              `json:"kind"`
	Status    string              `json:"status"`
	Target    string              `json:"target"`
	ElapsedMS float64             `json:"elapsed_ms"`
	Error     string              `json:"error,omitempty"`
	Result    *SynthesizeResponse `json:"result,omitempty"`
}

// jobRecord is the mutable server-side state behind a JobStatus.
type jobRecord struct {
	id       string
	kind     string
	target   string
	status   string
	created  time.Time
	finished time.Time
	err      string
	result   *SynthesizeResponse
}

// jobTable is the async job registry: bounded admission, completion
// history, and a drain hook for graceful shutdown.
type jobTable struct {
	max int

	mu     sync.Mutex
	jobs   map[string]*jobRecord
	order  []string // submission order, for pruning and listing
	active int
	seq    uint64
	drain  chan struct{} // closed and re-made as active drains to zero
}

func newJobTable(max int) *jobTable {
	if max < 1 {
		max = defaultMaxJobs
	}
	return &jobTable{max: max, jobs: map[string]*jobRecord{}}
}

var errJobsFull = errors.New("service: too many async jobs in flight")

// admit registers a new job or reports saturation.
func (t *jobTable) admit(kind, target string) (*jobRecord, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.active >= t.max {
		return nil, errJobsFull
	}
	t.seq++
	rec := &jobRecord{
		id:      fmt.Sprintf("job-%06d", t.seq),
		kind:    kind,
		target:  target,
		status:  JobQueued,
		created: time.Now(),
	}
	t.jobs[rec.id] = rec
	t.order = append(t.order, rec.id)
	t.active++
	t.pruneLocked()
	return rec, nil
}

// pruneLocked drops the oldest finished jobs past the history bound.
func (t *jobTable) pruneLocked() {
	finished := len(t.order) - t.active
	for i := 0; finished > finishedJobsKept && i < len(t.order); {
		id := t.order[i]
		rec := t.jobs[id]
		if rec.status == JobDone || rec.status == JobFailed {
			delete(t.jobs, id)
			t.order = append(t.order[:i], t.order[i+1:]...)
			finished--
			continue
		}
		i++
	}
}

func (t *jobTable) setRunning(rec *jobRecord) {
	t.mu.Lock()
	rec.status = JobRunning
	t.mu.Unlock()
}

func (t *jobTable) finish(rec *jobRecord, result *SynthesizeResponse, err error) {
	t.mu.Lock()
	rec.finished = time.Now()
	if err != nil {
		rec.status = JobFailed
		rec.err = err.Error()
	} else {
		rec.status = JobDone
		rec.result = result
	}
	t.active--
	if t.drain != nil && t.active == 0 {
		close(t.drain)
		t.drain = nil
	}
	t.mu.Unlock()
}

func (t *jobTable) get(id string) *jobRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.jobs[id]
}

func (t *jobTable) activeCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.active
}

// wait blocks until every admitted job has finished or ctx expires —
// the jobs half of graceful shutdown.
func (t *jobTable) wait(ctx context.Context) {
	t.mu.Lock()
	if t.active == 0 {
		t.mu.Unlock()
		return
	}
	if t.drain == nil {
		t.drain = make(chan struct{})
	}
	drain := t.drain
	t.mu.Unlock()
	select {
	case <-drain:
	case <-ctx.Done():
	}
}

// status snapshots one record into its JSON shape.
func (t *jobTable) status(rec *jobRecord) JobStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	js := JobStatus{
		ID:     rec.id,
		Kind:   rec.kind,
		Status: rec.status,
		Target: rec.target,
		Error:  rec.err,
		Result: rec.result,
	}
	end := rec.finished
	if end.IsZero() {
		end = time.Now()
	}
	js.ElapsedMS = float64(end.Sub(rec.created).Nanoseconds()) / 1e6
	return js
}

// JobSubmitResponse answers POST /v1/jobs: the job ID and where to poll.
type JobSubmitResponse struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Poll   string `json:"poll"`
}

// handleJobSubmit is the asynchronous twin of POST /v1/synthesize: the
// body is the same SynthesizeRequest, but the response is an immediate
// 202 with a job ID; the synthesis runs detached from the HTTP request
// (long synthesis survives any client disconnect) and its result is
// collected by polling GET /v1/jobs/{id}.
func (sv *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if sv.closing.Load() {
		sv.fail(w, http.StatusServiceUnavailable, errors.New("service: shutting down"))
		return
	}
	var req SynthesizeRequest
	if !sv.decode(w, r, &req) {
		return
	}
	def, err := sv.resolveTarget(req.Target, req.Spec)
	if err != nil {
		sv.fail(w, http.StatusBadRequest, err)
		return
	}
	rec, err := sv.jobs.admit("synthesize", def.name)
	if err != nil {
		sv.fail(w, http.StatusTooManyRequests, err)
		return
	}
	sv.metrics.JobsSubmitted.Add(1)
	rid := RequestIDFrom(r.Context())
	// The job outlives the 202 response, so the sampled trace context is
	// captured by value: the detached synthesis then appears in the fleet
	// trace under a "job synthesize" span even though the submitting
	// request span ended long before the work did.
	tc, _ := TraceContextFrom(r.Context())
	go func() {
		sv.jobs.setRunning(rec)
		var jsp *obs.Span
		if tc.Valid() {
			jsp = sv.obsv.TracerOrNil().StartRemote("job synthesize", tc).
				SetStr("job_id", rec.id).SetStr("target", def.name)
		}
		cfg, fp := sv.effectiveConfig(def, "")
		timeout := sv.cfg.DefaultTimeout
		if req.TimeoutMS > 0 {
			timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		}
		ctx := WithRequestID(context.Background(), rid)
		ctx = WithTraceContext(ctx, jsp.Context())
		e, cache, _, err := sv.entryFor(ctx, def, cfg, fp, timeout, true)
		if err != nil {
			jsp.SetStr("cache", "error").End()
			sv.jobs.finish(rec, nil, err)
			return
		}
		resp := &SynthesizeResponse{
			Target:      e.TargetName,
			Fingerprint: e.Fingerprint,
			Rules:       e.Lib.Len(),
			Partial:     e.Partial,
			Cache:       cache,
			ElapsedMS:   float64(e.Elapsed.Nanoseconds()) / 1e6,
			BySource:    e.Lib.Summarize().BySource,
			Stats:       e.Stats,
		}
		resp.Reused, resp.Resynthesized = e.Reused, e.Resynth
		if req.Emit {
			resp.Library = e.Lib.Emit()
		}
		jsp.SetStr("cache", cache).End()
		sv.jobs.finish(rec, resp, nil)
	}()
	w.Header().Set("Location", "/v1/jobs/"+rec.id)
	writeJSON(w, http.StatusAccepted, JobSubmitResponse{
		ID:     rec.id,
		Status: JobQueued,
		Poll:   "/v1/jobs/" + rec.id,
	})
}

func (sv *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	rec := sv.jobs.get(r.PathValue("id"))
	if rec == nil {
		sv.fail(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, sv.jobs.status(rec))
}

func (sv *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	sv.jobs.mu.Lock()
	ids := append([]string(nil), sv.jobs.order...)
	sv.jobs.mu.Unlock()
	sort.Strings(ids)
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if rec := sv.jobs.get(id); rec != nil {
			out = append(out, sv.jobs.status(rec))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}
