package service

import (
	"sort"
	"strings"
	"sync"

	"iselgen/internal/incr"
	"iselgen/internal/isa"
	"iselgen/internal/isel"
	"iselgen/internal/rules"
)

// ShardStore is the incremental layer beneath the full-library cache.
// The full cache is keyed by (spec text, config) — any edit to the spec
// is a total miss there. The shard store instead keys a *lineage* by
// (target name, config), i.e. everything except the spec text, and
// remembers the last full result decomposed into shards: groups of rules
// binned by their supporting-instruction set, alongside the per
// instruction content fingerprints the result was synthesized against.
// When an edited spec misses the full cache, the flight owner hands the
// lineage's shards to the incremental planner (internal/incr), which
// drops only the shards whose support changed and re-verifies the rest
// with zero solver queries.
type ShardStore struct {
	mu       sync.Mutex
	lineages map[string]*lineage
}

// lineage is the latest full synthesis result for one (target name,
// config) line of descent, in provenance form.
type lineage struct {
	instFPs map[string]string // content fingerprint per instruction at synthesis time
	shards  map[string]*shard // keyed by support-set signature
}

// shard is the group of rules sharing one supporting-instruction set. A
// spec edit invalidates a shard as a unit: every rule in it is stale iff
// any instruction in the support set changed.
type shard struct {
	support []string
	rules   []incr.ArtifactRule
}

// NewShardStore creates an empty shard store.
func NewShardStore() *ShardStore {
	return &ShardStore{lineages: map[string]*lineage{}}
}

// Update replaces a lineage with the shard decomposition of a freshly
// verified full library. Called after every full-quality completion
// (synthesized, incremental, or disk-loaded), so the lineage always
// reflects the most recent spec the service has seen for the line.
func (ss *ShardStore) Update(key string, tgt *isa.Target, lib *rules.Library) {
	ln := &lineage{instFPs: incr.InstFingerprints(tgt), shards: map[string]*shard{}}
	for _, r := range lib.Rules {
		names := make([]string, len(r.Prov))
		for i, p := range r.Prov {
			names[i] = p.Name // SupportOf returns them sorted and deduplicated
		}
		sig := strings.Join(names, ",")
		sh := ln.shards[sig]
		if sh == nil {
			sh = &shard{support: names}
			ln.shards[sig] = sh
		}
		src := r.Source
		if src == "" {
			src = "loaded"
		}
		sh.rules = append(sh.rules, incr.ArtifactRule{
			Line:       isel.RuleLine(r),
			PatternKey: r.Pattern.Key(),
			Insts:      names,
			Source:     src,
		})
	}
	ss.mu.Lock()
	ss.lineages[key] = ln
	ss.mu.Unlock()
}

// Artifact assembles the incremental planner's input from a lineage's
// shards, or nil when the lineage has never completed a full run. Shards
// are emitted in signature order so the assembly is deterministic.
func (ss *ShardStore) Artifact(key string) *incr.Artifact {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ln := ss.lineages[key]
	if ln == nil {
		return nil
	}
	art := &incr.Artifact{InstFPs: make(map[string]string, len(ln.instFPs))}
	for n, fp := range ln.instFPs {
		art.InstFPs[n] = fp
	}
	sigs := make([]string, 0, len(ln.shards))
	for sig := range ln.shards {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		art.Rules = append(art.Rules, ln.shards[sig].rules...)
	}
	return art
}

// Counts reports the number of lineages and shards held, for /v1/metrics.
func (ss *ShardStore) Counts() (lineages, shards int) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	for _, ln := range ss.lineages {
		shards += len(ln.shards)
	}
	return len(ss.lineages), shards
}
