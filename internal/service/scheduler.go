package service

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Scheduler errors, mapped to HTTP status codes by the server (429/503).
var (
	ErrQueueFull = errors.New("service: job queue full")
	ErrClosed    = errors.New("service: scheduler closed")
)

// Scheduler is a bounded job queue drained by a fixed worker pool — the
// admission-control layer in front of synthesis (SyGuS-style solver work
// must run under explicit budgets, so jobs carry their own deadline via
// the closure's context and the queue rejects rather than buffers
// unboundedly). Submit never blocks: a full queue is a backpressure
// signal the HTTP layer turns into 429.
type Scheduler struct {
	jobs chan func()
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool

	inFlight  atomic.Int64
	completed atomic.Uint64
	rejected  atomic.Uint64
}

// NewScheduler starts a pool of workers draining a queue of the given
// depth. workers < 1 and depth < 1 are clamped to 1.
func NewScheduler(workers, depth int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	s := &Scheduler{jobs: make(chan func(), depth)}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.jobs {
				s.inFlight.Add(1)
				job()
				s.inFlight.Add(-1)
				s.completed.Add(1)
			}
		}()
	}
	return s
}

// Submit enqueues a job without blocking. It returns ErrQueueFull when
// the queue is at capacity and ErrClosed after Close.
func (s *Scheduler) Submit(job func()) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.rejected.Add(1)
		return ErrClosed
	}
	select {
	case s.jobs <- job:
		return nil
	default:
		s.rejected.Add(1)
		return ErrQueueFull
	}
}

// Close stops accepting jobs and waits for queued and in-flight jobs to
// drain — the graceful-shutdown half of the daemon.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.jobs)
	s.mu.Unlock()
	s.wg.Wait()
}

// QueueDepth returns the number of jobs waiting (not yet started).
func (s *Scheduler) QueueDepth() int { return len(s.jobs) }

// QueueCapacity returns the configured queue bound.
func (s *Scheduler) QueueCapacity() int { return cap(s.jobs) }

// InFlight returns the number of jobs currently executing.
func (s *Scheduler) InFlight() int64 { return s.inFlight.Load() }

// Completed returns the number of jobs that finished.
func (s *Scheduler) Completed() uint64 { return s.completed.Load() }

// Rejected returns the number of submissions refused by backpressure.
func (s *Scheduler) Rejected() uint64 { return s.rejected.Load() }
