package service

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"iselgen/internal/rules"
	"iselgen/internal/smt"
	"iselgen/internal/solver"
)

func getSolverQuery(t *testing.T, base, key string, forwarded bool) (int, SolverQueryResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/solver/query?key="+key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if forwarded {
		req.Header.Set(ForwardedHeader, "1")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out SolverQueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// stubProber answers every probe with a fixed entry, counting calls.
type stubProber struct {
	entry  smt.MemoEntry
	probes int
}

func (p *stubProber) ProbeMemo(ctx context.Context, key string) (smt.MemoEntry, bool) {
	p.probes++
	return p.entry, true
}

// TestSolverQueryAndRuleWhy drives the provenance API end to end:
// /v1/rules/{fp}/why joins a cached rule to the memo queries stored
// under its synthesis context, and /v1/solver/query replays one of
// those verdicts by key. Misses are 404s; no path solves. (The mini
// spec is fully index-proven, so the memo entry is planted under the
// rule's real context exactly as a synthesis worker would store it.)
func TestSolverQueryAndRuleWhy(t *testing.T) {
	solver.Shared.Reset()
	sv, ts := newTestServer(t, testConfig())

	status, body := postJSON(t, ts.URL+"/v1/synthesize", SynthesizeRequest{Target: "mini", Spec: svcSpec})
	if status != http.StatusOK {
		t.Fatalf("synthesize: status %d: %s", status, body)
	}

	// Discover a rule through the listing endpoint, the way a client
	// that cannot compute fingerprints would.
	lr, err := http.Get(ts.URL + "/v1/rules?target=mini")
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Body.Close()
	var listing RuleListResponse
	if err := json.NewDecoder(lr.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Rules) == 0 {
		t.Fatal("rule listing is empty after synthesis")
	}
	fp := listing.Rules[0].Fingerprint
	source := listing.Rules[0].Source
	ctx := "synthesis:" + listing.Rules[0].Pattern
	var inStore bool
	for _, e := range sv.store.Entries() {
		for _, r := range e.Lib.Rules {
			if rules.RuleFP(r) == fp {
				inStore = true
			}
		}
	}
	if !inStore {
		t.Fatalf("listed fingerprint %s not present in any cached library", fp)
	}
	if fr, err := http.Get(ts.URL + "/v1/rules?target=nonesuch"); err != nil {
		t.Fatal(err)
	} else {
		var empty RuleListResponse
		if err := json.NewDecoder(fr.Body).Decode(&empty); err != nil {
			t.Fatal(err)
		}
		fr.Body.Close()
		if len(empty.Rules) != 0 {
			t.Fatalf("target filter leaked %d rules", len(empty.Rules))
		}
	}
	key := "cafe" + fp
	solver.Shared.Store(key, smt.MemoEntry{Verdict: smt.Equal, SpecFP: "spec-fp", Budget: 64, Context: ctx})

	resp, err := http.Get(ts.URL + "/v1/rules/" + fp + "/why")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var why RuleWhyResponse
	if err := json.NewDecoder(resp.Body).Decode(&why); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("why: status %d", resp.StatusCode)
	}
	if why.Source != source || len(why.Libraries) == 0 || why.Context != ctx {
		t.Fatalf("why response incomplete: source=%q libraries=%d context=%q",
			why.Source, len(why.Libraries), why.Context)
	}
	if len(why.MemoQueries) != 1 || why.MemoQueries[0].Key != key {
		t.Fatalf("why did not join the memo under the rule's context: %+v", why.MemoQueries)
	}

	// Replay the provenance query by key: a local memo hit.
	code, q := getSolverQuery(t, ts.URL, key, false)
	if code != http.StatusOK || !q.Found || q.Source != "local" || q.Entry == nil {
		t.Fatalf("local query = %d %+v", code, q)
	}
	if q.Entry.Context != why.Context {
		t.Fatalf("entry context %q, want %q", q.Entry.Context, why.Context)
	}

	// Unknown fingerprint and unknown key are 404s.
	if r2, err := http.Get(ts.URL + "/v1/rules/ffffffffffffffff/why"); err != nil {
		t.Fatal(err)
	} else {
		r2.Body.Close()
		if r2.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown rule fingerprint: status %d", r2.StatusCode)
		}
	}
	if code, q := getSolverQuery(t, ts.URL, "no-such-key", false); code != http.StatusNotFound || q.Found {
		t.Fatalf("unknown key = %d %+v", code, q)
	}
}

// TestSolverQueryPeerProbe pins the fleet semantics: a local miss
// consults the prober (adopting the peer's verdict), but a request
// already carrying ForwardedHeader is answered strictly locally — two
// replicas can never chase a key around the ring.
func TestSolverQueryPeerProbe(t *testing.T) {
	solver.Shared.Reset()
	sv, ts := newTestServer(t, testConfig())
	p := &stubProber{entry: smt.MemoEntry{Verdict: smt.Equal, SpecFP: "peer-fp", Budget: 7}}
	sv.SetMemoProber(p)

	// Forwarded: local miss answers 404 without touching the prober.
	code, q := getSolverQuery(t, ts.URL, "k1", true)
	if code != http.StatusNotFound || q.Found || p.probes != 0 {
		t.Fatalf("forwarded request = %d %+v (probes=%d)", code, q, p.probes)
	}

	// Not forwarded: the prober answers and the verdict is adopted.
	code, q = getSolverQuery(t, ts.URL, "k1", false)
	if code != http.StatusOK || !q.Found || q.Source != "peer" || p.probes != 1 {
		t.Fatalf("peer probe = %d %+v (probes=%d)", code, q, p.probes)
	}
	if e, ok := solver.Shared.Lookup("k1"); !ok || e.SpecFP != "peer-fp" {
		t.Fatalf("peer verdict not adopted locally: %+v, %v", e, ok)
	}

	// Adopted: the next query is local, no second probe.
	code, q = getSolverQuery(t, ts.URL, "k1", false)
	if code != http.StatusOK || q.Source != "local" || p.probes != 1 {
		t.Fatalf("post-adoption query = %d %+v (probes=%d)", code, q, p.probes)
	}
}
