package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"

	"iselgen/internal/obs"
	"iselgen/internal/rules"
	"iselgen/internal/smt"
	"iselgen/internal/solver"
)

// ForwardedHeader marks a peer-originated request; a solver probe
// carrying it is answered strictly from the local memo (no onward
// probing), so two replicas can never chase a key around the ring.
const ForwardedHeader = "X-Iseld-Forwarded"

// MemoProber asks the fleet whether any peer already holds a verdict
// for a memo key. Implementations must be cache-only end to end: a
// probe that misses everywhere returns ok=false and must never trigger
// remote solving — the memo service answers questions, it does not
// create work.
type MemoProber interface {
	ProbeMemo(ctx context.Context, key string) (smt.MemoEntry, bool)
}

// SetMemoProber attaches the cluster's memo-probe hook. Call it after
// New and before the handler serves traffic, like SetFiller.
func (sv *Server) SetMemoProber(p MemoProber) { sv.prober = p }

// SolverQueryRequest is the body of POST /v1/solver/query.
type SolverQueryRequest struct {
	// Key is the content-addressed memo key (the checker's canonical
	// term-pair hash, as appended to the solver journal).
	Key string `json:"key"`
}

// SolverQueryResponse answers GET and POST /v1/solver/query.
type SolverQueryResponse struct {
	Key   string `json:"key"`
	Found bool   `json:"found"`
	// Source is where the verdict came from: "local" (this replica's
	// memo) or "peer" (a hedged cache-only fleet probe).
	Source string `json:"source,omitempty"`
	// Verdict is the human form of Entry.Verdict: "equal", "not-equal",
	// or "unknown".
	Verdict string `json:"verdict,omitempty"`
	// Entry is the full stored record: verdict code, spec fingerprint,
	// solve budget, counterexample (if refuted), provenance context, and
	// solver statistics.
	Entry *smt.MemoEntry `json:"entry,omitempty"`
}

func (sv *Server) handleSolverQueryGet(w http.ResponseWriter, r *http.Request) {
	sv.answerSolverQuery(w, r, r.URL.Query().Get("key"))
}

func (sv *Server) handleSolverQueryPost(w http.ResponseWriter, r *http.Request) {
	var req SolverQueryRequest
	if !sv.decode(w, r, &req) {
		return
	}
	sv.answerSolverQuery(w, r, req.Key)
}

// answerSolverQuery resolves one memo key: local store, then — for
// requests that did not already cross the fleet — a hedged cache-only
// peer probe. A miss everywhere is a 404 with found=false; by
// construction no path here ever starts a solve.
func (sv *Server) answerSolverQuery(w http.ResponseWriter, r *http.Request, key string) {
	if key == "" {
		sv.fail(w, http.StatusBadRequest, errors.New(`solver query needs a "key"`))
		return
	}
	if e, ok := solver.Shared.Lookup(key); ok {
		sv.metrics.MemoServed.Add(1)
		writeJSON(w, http.StatusOK, SolverQueryResponse{
			Key: key, Found: true, Source: "local", Verdict: e.Verdict.String(), Entry: &e})
		return
	}
	if sv.prober != nil && r.Header.Get(ForwardedHeader) == "" {
		if e, ok := sv.prober.ProbeMemo(r.Context(), key); ok {
			// Adopt the peer's verdict locally; Store's dedupe makes
			// repeated adoptions idempotent and the journal gains it too.
			solver.Shared.Store(key, e)
			sv.metrics.MemoPeerHits.Add(1)
			writeJSON(w, http.StatusOK, SolverQueryResponse{
				Key: key, Found: true, Source: "peer", Verdict: e.Verdict.String(), Entry: &e})
			return
		}
	}
	writeJSON(w, http.StatusNotFound, SolverQueryResponse{Key: key, Found: false})
}

// RuleListing is one row of GET /v1/rules: enough identity to pick a
// fingerprint for the /why provenance query.
type RuleListing struct {
	Fingerprint string `json:"fingerprint"`
	Target      string `json:"target"`
	Pattern     string `json:"pattern"`
	Sequence    string `json:"sequence"`
	Source      string `json:"source"`
	Cost        string `json:"cost,omitempty"`
}

// RuleListResponse answers GET /v1/rules.
type RuleListResponse struct {
	Rules []RuleListing `json:"rules"`
}

// handleRuleList enumerates every rule across the cached libraries
// (deduplicated by fingerprint; `?target=` filters), so /why consumers
// can discover fingerprints without recomputing them client-side.
func (sv *Server) handleRuleList(w http.ResponseWriter, r *http.Request) {
	targetFilter := r.URL.Query().Get("target")
	seen := map[string]bool{}
	resp := RuleListResponse{Rules: []RuleListing{}}
	for _, e := range sv.store.Entries() {
		if targetFilter != "" && e.TargetName != targetFilter {
			continue
		}
		for _, rule := range e.Lib.Rules {
			fp := rules.RuleFP(rule)
			if seen[fp] {
				continue
			}
			seen[fp] = true
			l := RuleListing{
				Fingerprint: fp,
				Target:      e.TargetName,
				Pattern:     rule.Pattern.Key(),
				Sequence:    rule.Seq.String(),
				Source:      rule.Source,
			}
			if !rule.CostV.IsZero() {
				l.Cost = rule.CostV.String()
			}
			resp.Rules = append(resp.Rules, l)
		}
	}
	sort.Slice(resp.Rules, func(i, j int) bool {
		if resp.Rules[i].Target != resp.Rules[j].Target {
			return resp.Rules[i].Target < resp.Rules[j].Target
		}
		return resp.Rules[i].Fingerprint < resp.Rules[j].Fingerprint
	})
	writeJSON(w, http.StatusOK, resp)
}

// RuleWhyResponse answers GET /v1/rules/{fingerprint}/why: the rule's
// identity and provenance joined with every memoized solver query and
// observability record produced while synthesizing its pattern — "why
// is this rule in the library, and what did proving it cost".
type RuleWhyResponse struct {
	// Fingerprint is the queried rule fingerprint (rules.RuleFP).
	Fingerprint string `json:"fingerprint"`
	Target      string `json:"target"`
	Pattern     string `json:"pattern"`
	Sequence    string `json:"sequence"`
	// Source is the rule's discovery path: "index", "smt", or "manual".
	Source string `json:"source"`
	// Cost is the model cost "latency,size" when a cost table stamped it.
	Cost string `json:"cost,omitempty"`
	// Provenance lists the supporting instructions with the semantic
	// fingerprints they had when the rule was established.
	Provenance []rules.InstFP `json:"provenance,omitempty"`
	// Libraries lists the cached library fingerprints holding this rule.
	Libraries []string `json:"libraries"`
	// Context is the provenance join key the synthesis workers stamped
	// on their solver queries ("synthesis:<pattern key>").
	Context string `json:"context"`
	// MemoQueries are the verdict-memo records stored under Context —
	// the equivalence checks (proofs, refutations, timeouts) the
	// pattern's synthesis ran, keyed by canonical term-pair hash.
	MemoQueries []solver.Query `json:"memo_queries,omitempty"`
	// SMTQueries are the observability ring's per-query solver cost
	// records for Context (present when the server runs with obs; the
	// ring is bounded, so old runs age out).
	SMTQueries []obs.SMTQuery `json:"smt_queries,omitempty"`
}

// handleRuleWhy joins a rule (found by fingerprint across every cached
// library) with the solver memo and the observability provenance ring.
func (sv *Server) handleRuleWhy(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fingerprint")
	var found *rules.Rule
	var resp RuleWhyResponse
	for _, e := range sv.store.Entries() {
		for _, rule := range e.Lib.Rules {
			if rules.RuleFP(rule) != fp {
				continue
			}
			if found == nil {
				found = rule
				resp.Target = e.TargetName
			}
			resp.Libraries = append(resp.Libraries, e.Fingerprint)
			break
		}
	}
	if found == nil {
		sv.fail(w, http.StatusNotFound,
			fmt.Errorf("no cached library holds a rule with fingerprint %s (synthesize first, then query)", fp))
		return
	}
	sort.Strings(resp.Libraries)
	resp.Fingerprint = fp
	resp.Pattern = found.Pattern.Key()
	resp.Sequence = found.Seq.String()
	resp.Source = found.Source
	if !found.CostV.IsZero() {
		resp.Cost = found.CostV.String()
	}
	resp.Provenance = found.Prov
	resp.Context = "synthesis:" + found.Pattern.Key()
	qs := solver.Shared.ByContext(resp.Context)
	sort.Slice(qs, func(i, j int) bool { return qs[i].Key < qs[j].Key })
	resp.MemoQueries = qs
	if p := sv.obsv.ProvOrNil(); p != nil {
		for _, q := range p.SMTQueries() {
			if q.Context == resp.Context {
				resp.SMTQueries = append(resp.SMTQueries, q)
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
