package service

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"

	"iselgen/internal/obs"
)

func obsTestConfig() Config {
	cfg := testConfig()
	cfg.Obs = obs.New()
	return cfg
}

// TestPromEndpoint is the acceptance check for GET /metrics: after real
// traffic, the exposition must carry the right Content-Type and pass
// the strict Prometheus text-format parser, with the service gauges and
// the request histogram present.
func TestPromEndpoint(t *testing.T) {
	_, ts := newTestServer(t, obsTestConfig())

	status, _ := postJSON(t, ts.URL+"/v1/synthesize", SynthesizeRequest{Target: "mini", Spec: svcSpec})
	if status != http.StatusOK {
		t.Fatalf("synthesize status %d", status)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	fams, err := obs.ParseProm(string(body))
	if err != nil {
		t.Fatalf("/metrics failed Prometheus text parse: %v\n%s", err, body)
	}
	for _, want := range []string{
		"iseld_synth_runs", "iseld_queue_depth", "iseld_uptime_seconds",
		"http_requests_total", "http_request_duration_ns",
	} {
		if fams[want] == nil {
			t.Errorf("/metrics missing family %q", want)
		}
	}
	// The synthesize request must be visible in the request counter.
	var counted bool
	for _, s := range fams["http_requests_total"].Samples {
		if s.Labels["path"] == "/v1/synthesize" && s.Labels["status"] == "200" && s.Value >= 1 {
			counted = true
		}
	}
	if !counted {
		t.Errorf("http_requests_total has no sample for the synthesize request: %+v",
			fams["http_requests_total"].Samples)
	}
	if v := fams["iseld_synth_runs"].Samples[0].Value; v != 1 {
		t.Errorf("iseld_synth_runs = %v, want 1", v)
	}

	// The default exposition must stay strictly 0.0.4-consumable: a
	// classic Prometheus scraper rejects the whole scrape on an exemplar
	// annotation, so none may appear without the opt-in.
	if bytes.Contains(body, []byte(" # {")) {
		t.Errorf("/metrics leaked exemplar annotations without ?exemplars=1:\n%s", body)
	}

	// The opt-in form switches to OpenMetrics-style exposition with
	// exemplar annotations and a # EOF terminator, and still parses.
	resp2, err := http.Get(ts.URL + "/metrics?exemplars=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("?exemplars=1 Content-Type = %q", ct)
	}
	body2, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(bytes.TrimSpace(body2), []byte("# EOF")) {
		t.Errorf("?exemplars=1 output missing # EOF terminator")
	}
	if _, err := obs.ParseProm(string(body2)); err != nil {
		t.Fatalf("?exemplars=1 output failed strict parse: %v\n%s", err, body2)
	}
}

// TestTraceEndpoint: GET /v1/trace returns Chrome trace-event JSON
// containing the per-request and synthesis spans.
func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, obsTestConfig())
	if status, _ := postJSON(t, ts.URL+"/v1/synthesize", SynthesizeRequest{Target: "mini", Spec: svcSpec}); status != http.StatusOK {
		t.Fatalf("synthesize status %d", status)
	}

	resp, err := http.Get(ts.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/trace status %d", resp.StatusCode)
	}
	var f obs.TraceFile
	if err := json.NewDecoder(resp.Body).Decode(&f); err != nil {
		t.Fatalf("/v1/trace is not valid trace JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event ph = %q, want X", ev.Ph)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"http POST /v1/synthesize", "synth/pool", "synth/match"} {
		if !names[want] {
			t.Errorf("trace missing span %q; have %v", want, names)
		}
	}
}

// TestTraceEndpointDisabled: without a tracer, /v1/trace is 404, not a
// crash or an empty 200.
func TestTraceEndpointDisabled(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	resp, err := http.Get(ts.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/v1/trace without tracer: status %d, want 404", resp.StatusCode)
	}
}

// TestRequestIDAndAccessLog: every response carries X-Request-Id, IDs
// are distinct per request, and the structured access log carries the
// same ID with method/path/status.
func TestRequestIDAndAccessLog(t *testing.T) {
	var logBuf bytes.Buffer
	cfg := obsTestConfig()
	cfg.Logger = slog.New(slog.NewTextHandler(&logBuf, nil))
	_, ts := newTestServer(t, cfg)

	ids := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Request-Id")
		if !strings.HasPrefix(id, "req-") {
			t.Fatalf("X-Request-Id = %q", id)
		}
		ids[id] = true
	}
	if len(ids) != 3 {
		t.Errorf("request IDs not distinct: %v", ids)
	}
	logText := logBuf.String()
	for id := range ids {
		if !strings.Contains(logText, "id="+id) {
			t.Errorf("access log missing line for %s:\n%s", id, logText)
		}
	}
	if !strings.Contains(logText, "path=/healthz") || !strings.Contains(logText, "status=200") {
		t.Errorf("access log missing path/status fields:\n%s", logText)
	}
}

// TestMetricsUptimeBuildAndSAT: the JSON /v1/metrics surface reports
// uptime, build identity, and (after a synthesis) the SAT work counters
// inside the accumulated stage stats.
func TestMetricsUptimeBuildAndSAT(t *testing.T) {
	cfg := obsTestConfig()
	// Small corpora resolve entirely through the term index; disable it
	// so patterns take the SMT fallback and exercise the solver counters.
	cfg.Synth.DisableIndex = true
	_, ts := newTestServer(t, cfg)
	if status, _ := postJSON(t, ts.URL+"/v1/synthesize", SynthesizeRequest{Target: "mini", Spec: svcSpec}); status != http.StatusOK {
		t.Fatalf("synthesize status %d", status)
	}

	m := getMetrics(t, ts.URL)
	if m.UptimeSec < 0 {
		t.Errorf("uptime_sec = %v", m.UptimeSec)
	}
	if m.Build.GoVersion == "" {
		t.Errorf("build info missing go_version: %+v", m.Build)
	}
	if m.Stages.SMTQueries == 0 {
		t.Errorf("stage stats show no SMT queries after synthesis: %+v", m.Stages)
	}
	if m.Stages.SATPropagations == 0 {
		t.Errorf("SAT propagation counter did not flow into stage stats: %+v", m.Stages)
	}
}

// TestPprofMounted: the pprof index responds (the profile handlers hang
// off the same mux registration).
func TestPprofMounted(t *testing.T) {
	_, ts := newTestServer(t, obsTestConfig())
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(body, []byte("goroutine")) {
		t.Errorf("pprof index does not look like pprof output")
	}
}
