package service

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iselgen/internal/isa"
	"iselgen/internal/term"
)

// TestDiskArtifactQuarantine pins the crash-tolerant disk-load contract:
// an artifact that no longer parses or verifies is never served — it is
// moved aside to a .quarantine file (evidence for post-mortems), a
// warning is logged, and the load reports a miss so the slot
// re-synthesizes cleanly.
func TestDiskArtifactQuarantine(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var warnings []string
	s.SetLogger(func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	})

	const fp = "deadbeef"
	artifact := filepath.Join(dir, fp+".rules")
	if err := os.WriteFile(artifact, []byte("rule ADDrr <- garbage that does not parse\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	mat := func() (*term.Builder, *isa.Target, error) {
		b := term.NewBuilder()
		tgt, err := isa.LoadTarget(b, "mini", svcSpec, nil, 4)
		return b, tgt, err
	}
	if e, ok := s.LoadDisk(fp, mat); ok {
		t.Fatalf("corrupt artifact served: %+v", e)
	}
	if _, err := os.Stat(artifact); !os.IsNotExist(err) {
		t.Fatal("corrupt artifact left in place; a future load would re-trust it")
	}
	if _, err := os.Stat(artifact + ".quarantine"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "quarantined") {
		t.Fatalf("expected one quarantine warning, got %v", warnings)
	}

	// The quarantined slot behaves as a plain miss from here on.
	if _, ok := s.LoadDisk(fp, mat); ok {
		t.Fatal("second load of a quarantined fingerprint still hit")
	}
	if len(warnings) != 1 {
		t.Fatalf("a plain miss must not log: %v", warnings)
	}
}
