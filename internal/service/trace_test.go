package service

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"

	"iselgen/internal/obs"
)

// doReq issues one request with optional extra headers and returns the
// response (body drained and closed).
func doReq(t *testing.T, method, url string, body []byte, hdr map[string]string) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// TestTraceHeaderMintedAndLogged: a context-less request on a sampling
// server gets a fresh, strictly valid X-Iseld-Trace response header, and
// the access-log line carries the same trace ID.
func TestTraceHeaderMintedAndLogged(t *testing.T) {
	var logBuf bytes.Buffer
	cfg := obsTestConfig()
	cfg.Logger = slog.New(slog.NewTextHandler(&logBuf, nil))
	_, ts := newTestServer(t, cfg)

	resp := doReq(t, http.MethodGet, ts.URL+"/healthz", nil, nil)
	h := resp.Header.Get(obs.TraceHeader)
	tc, err := obs.ParseTraceHeader(h)
	if err != nil {
		t.Fatalf("minted trace header %q does not parse: %v", h, err)
	}
	if !tc.Sampled {
		t.Errorf("minted trace header is unsampled: %q", h)
	}
	if !strings.Contains(logBuf.String(), "trace="+tc.TraceID.String()) {
		t.Errorf("access log missing trace field for %s:\n%s", tc.TraceID, logBuf.String())
	}
}

// TestTraceHeaderAdoptedAndRespected: a valid sampled incoming context
// is adopted (same trace ID echoed, new span ID); a valid unsampled
// context is respected — no sampling, no header echo, no log field.
func TestTraceHeaderAdoptedAndRespected(t *testing.T) {
	var logBuf bytes.Buffer
	cfg := obsTestConfig()
	cfg.Logger = slog.New(slog.NewTextHandler(&logBuf, nil))
	_, ts := newTestServer(t, cfg)

	in := obs.TraceContext{TraceID: obs.NewTraceID(), SpanID: 0xabc, Sampled: true}
	resp := doReq(t, http.MethodGet, ts.URL+"/healthz", nil,
		map[string]string{obs.TraceHeader: in.Header()})
	out, err := obs.ParseTraceHeader(resp.Header.Get(obs.TraceHeader))
	if err != nil {
		t.Fatalf("echoed header: %v", err)
	}
	if out.TraceID != in.TraceID {
		t.Errorf("sampled context not adopted: got trace %s, want %s", out.TraceID, in.TraceID)
	}
	if out.SpanID == in.SpanID {
		t.Errorf("echoed span ID equals the caller's — the server must mint its own span")
	}

	in.Sampled = false
	logBuf.Reset()
	resp = doReq(t, http.MethodGet, ts.URL+"/healthz", nil,
		map[string]string{obs.TraceHeader: in.Header()})
	if h := resp.Header.Get(obs.TraceHeader); h != "" {
		t.Errorf("unsampled request echoed a trace header %q", h)
	}
	if strings.Contains(logBuf.String(), "trace=") {
		t.Errorf("unsampled request logged a trace field:\n%s", logBuf.String())
	}
}

// TestTraceHeaderHostileMintsFresh is the middleware half of the
// hostile-header regression: whatever garbage arrives in X-Iseld-Trace,
// the response carries a freshly minted valid context — never an echo
// or derivative of the hostile value.
func TestTraceHeaderHostileMintsFresh(t *testing.T) {
	_, ts := newTestServer(t, obsTestConfig())
	valid := obs.TraceContext{TraceID: obs.NewTraceID(), SpanID: 1, Sampled: true}.Header()
	hostile := []string{
		"garbage",
		strings.ToUpper(valid),
		valid + strings.Repeat("a", 2048),
		"00-" + strings.Repeat("0", 32) + valid[35:], // zero trace ID
		strings.Repeat("!", len(valid)),
	}
	for _, h := range hostile {
		resp := doReq(t, http.MethodGet, ts.URL+"/healthz", nil,
			map[string]string{obs.TraceHeader: h})
		got := resp.Header.Get(obs.TraceHeader)
		tc, err := obs.ParseTraceHeader(got)
		if err != nil {
			t.Errorf("hostile %.40q: response header %q not valid: %v", h, got, err)
			continue
		}
		if strings.Contains(h, tc.TraceID.String()) {
			t.Errorf("hostile %.40q: response reused the hostile trace ID %s", h, tc.TraceID)
		}
	}
}

// TestTraceSampleDisabled: a negative TraceSample means this server
// never starts traces — but still honors a valid incoming context.
func TestTraceSampleDisabled(t *testing.T) {
	cfg := obsTestConfig()
	cfg.TraceSample = -1
	_, ts := newTestServer(t, cfg)

	resp := doReq(t, http.MethodGet, ts.URL+"/healthz", nil, nil)
	if h := resp.Header.Get(obs.TraceHeader); h != "" {
		t.Errorf("sampling-off server minted a trace: %q", h)
	}
	in := obs.TraceContext{TraceID: obs.NewTraceID(), SpanID: 0xabc, Sampled: true}
	resp = doReq(t, http.MethodGet, ts.URL+"/healthz", nil,
		map[string]string{obs.TraceHeader: in.Header()})
	out, err := obs.ParseTraceHeader(resp.Header.Get(obs.TraceHeader))
	if err != nil || out.TraceID != in.TraceID {
		t.Errorf("sampling-off server dropped a valid incoming context: %v err=%v", out, err)
	}
}

// TestTraceByID: a client-minted trace context flows through a
// synthesize request into the span ring, and GET /v1/trace/{traceId}
// assembles it into a strict-parsing Chrome trace whose spans include
// the request span and the detached synth flight, all correctly linked.
func TestTraceByID(t *testing.T) {
	_, ts := newTestServer(t, obsTestConfig())
	client := obs.TraceContext{TraceID: obs.NewTraceID(), SpanID: 0x5151, Sampled: true}
	body, _ := json.Marshal(SynthesizeRequest{Target: "mini", Spec: svcSpec})
	resp := doReq(t, http.MethodPost, ts.URL+"/v1/synthesize", body,
		map[string]string{obs.TraceHeader: client.Header()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize status %d", resp.StatusCode)
	}

	// Raw span form: must satisfy the cross-node validator, with the
	// request span rooted under the client's (out-of-file) span.
	r, err := http.Get(ts.URL + "/v1/trace/" + client.TraceID.String() + "?format=spans")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/v1/trace/{id}?format=spans status %d", r.StatusCode)
	}
	var sr TraceSpansResponse
	if err := json.NewDecoder(r.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTraceSpans(sr.Spans); err != nil {
		t.Fatalf("trace spans fail validation: %v\n%+v", err, sr.Spans)
	}
	names := map[string]uint64{}
	for _, s := range sr.Spans {
		names[s.Name] = s.SpanID
		if s.Name == "http POST /v1/synthesize" && s.Parent != client.SpanID {
			t.Errorf("request span parent %016x, want client span %016x", s.Parent, client.SpanID)
		}
	}
	for _, want := range []string{"http POST /v1/synthesize", "synth flight"} {
		if names[want] == 0 {
			t.Errorf("trace missing span %q; have %v", want, names)
		}
	}

	// Assembled form: strict Chrome-trace parse.
	r2, err := http.Get(ts.URL + "/v1/trace/" + client.TraceID.String())
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	data, _ := io.ReadAll(r2.Body)
	pt, err := obs.ParseTraceFile(data)
	if err != nil {
		t.Fatalf("assembled trace fails strict parse: %v\n%s", err, data)
	}
	if pt.Spans != len(sr.Spans) || pt.Roots != 1 {
		t.Errorf("parsed trace %+v, want %d spans and 1 root", pt, len(sr.Spans))
	}

	// JSON metrics expose the trace ID as a latency-bucket exemplar.
	m := getMetrics(t, ts.URL)
	var found bool
	for _, ex := range m.TraceExemplars {
		if ex.Metric == "http_request_duration_ns" && ex.TraceID == client.TraceID.String() {
			found = true
		}
	}
	if !found {
		t.Errorf("trace_exemplars missing %s: %+v", client.TraceID, m.TraceExemplars)
	}

	// Error surface: malformed ID is 400, unknown ID 404, no tracer 404.
	if r := doReq(t, http.MethodGet, ts.URL+"/v1/trace/nope", nil, nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed trace ID: status %d, want 400", r.StatusCode)
	}
	if r := doReq(t, http.MethodGet, ts.URL+"/v1/trace/"+obs.NewTraceID().String(), nil, nil); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace ID: status %d, want 404", r.StatusCode)
	}
	_, plain := newTestServer(t, testConfig())
	if r := doReq(t, http.MethodGet, plain.URL+"/v1/trace/"+obs.NewTraceID().String(), nil, nil); r.StatusCode != http.StatusNotFound {
		t.Errorf("traceless server: status %d, want 404", r.StatusCode)
	}
}
