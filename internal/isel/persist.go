package isel

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"iselgen/internal/bv"
	"iselgen/internal/cost"
	"iselgen/internal/isa"
	"iselgen/internal/pattern"
	"iselgen/internal/rules"
	"iselgen/internal/term"
)

// Rule-library persistence (§VI-A: the synthesis stages are independent;
// a synthesized library can be persisted and shipped, then reloaded into
// a selector without re-running synthesis). The format is line-based:
//
//	# comment
//	#%inst <name> <fingerprint>
//	<pattern-key> \t <sequence-spec> \t <operand-spec> [\t <leaf-consts>] [\t cost:<lat>,<sz>] \t <source>
//
// using the same compact sequence/operand grammar as the manual-rule DSL
// (MustSeq / MustRule), so saved rules are human-auditable. The "#%inst"
// header records, for every instruction any rule depends on, the content
// fingerprint its semantics had at synthesis time (rules.InstFingerprint)
// — the provenance an incremental resynthesis diffs against a new spec.
// The trailing source field preserves each rule's proof origin (index vs
// smt) across save/load cycles. The optional "cost:" field carries the
// rule's model cost vector (rules.Rule.CostV) for libraries synthesized
// under a cost table; cost-less lines load with the legacy operand-count
// metric. All extensions are backward compatible: "#"-prefixed lines
// were always comments, and loaders discriminate the trailing fields by
// shape — the "cost:" prefix is checked before the '='-means-leaf-consts
// test, since the cost field itself contains no '='. Every rule is
// re-verified on load.

// SaveLibrary serializes a library. The provenance header covers the
// instructions the rules depend on; use SaveLibraryFor when the loaded
// target is at hand, so the header covers the *whole* spec and an
// incremental resynthesis can also tell unchanged-but-unused
// instructions from new ones.
func SaveLibrary(lib *rules.Library) string {
	fps := map[string]string{}
	for _, r := range lib.Rules {
		for _, p := range r.Prov {
			fps[p.Name] = p.FP
		}
	}
	return saveLibrary(lib, fps)
}

// SaveLibraryFor serializes a library with a provenance header recording
// the content fingerprint of every instruction of the target it was
// synthesized against — the artifact format the incremental planner
// diffs against an edited spec.
func SaveLibraryFor(lib *rules.Library, tgt *isa.Target) string {
	fps := make(map[string]string, len(tgt.Insts))
	for _, inst := range tgt.Insts {
		fps[inst.Name] = rules.InstFingerprint(inst)
	}
	return saveLibrary(lib, fps)
}

func saveLibrary(lib *rules.Library, fps map[string]string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s rule library: %d rules\n", lib.Target, lib.Len())
	names := make([]string, 0, len(fps))
	for n := range fps {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "#%%inst %s %s\n", n, fps[n])
	}
	for _, r := range lib.Rules {
		sb.WriteString(RuleLine(r))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RuleLine renders one rule as its persisted artifact line (no trailing
// newline). The rendering depends only on rule content — not on builder
// or target identity — so it doubles as a builder-independent rule
// fingerprint for comparing libraries across synthesis runs.
func RuleLine(r *rules.Rule) string {
	line := r.Pattern.Key() + "\t" + seqSpecOf(r.Seq) + "\t" + opSpecOf(r)
	if len(r.LeafConsts) > 0 {
		// Emit in leaf-index order: map iteration order would make
		// the serialization nondeterministic, and the disk cache
		// wants Save → Load → Save to be byte-identical.
		leaves := make([]int, 0, len(r.LeafConsts))
		for leaf := range r.LeafConsts {
			leaves = append(leaves, leaf)
		}
		sort.Ints(leaves)
		lcs := make([]string, len(leaves))
		for i, leaf := range leaves {
			lcs[i] = fmt.Sprintf("%d=%d", leaf, r.LeafConsts[leaf].Int64())
		}
		line += "\t" + strings.Join(lcs, ",")
	}
	if !r.CostV.IsZero() {
		line += "\tcost:" + r.CostV.String()
	}
	src := r.Source
	if src == "" {
		src = "loaded"
	}
	return line + "\t" + src
}

// seqSpecOf renders a sequence in MustSeq grammar. Sequences with fixed
// immediates append [op=value] binders.
func seqSpecOf(s *isa.Sequence) string {
	var parts []string
	for i, inst := range s.Insts {
		p := inst.Name
		var mods []string
		for _, w := range s.Wirings[i] {
			mods = append(mods, w)
		}
		if i > 0 && len(s.Wirings[i]) == 0 {
			mods = append(mods, "flags")
		}
		for _, fi := range s.FixedImms {
			if fi.Inst == i {
				mods = append(mods, fmt.Sprintf("%s=%d", fi.Op, fi.Val.Uint64()))
			}
		}
		if len(mods) > 0 {
			p += "[" + strings.Join(mods, ",") + "]"
		}
		parts = append(parts, p)
	}
	return strings.Join(parts, " ; ")
}

func opSpecOf(r *rules.Rule) string {
	if len(r.Operands) == 0 {
		return "-"
	}
	var toks []string
	for _, src := range r.Operands {
		switch src.Kind {
		case rules.SrcConst:
			toks = append(toks, fmt.Sprintf("=%d", src.Const.Int64()))
		case rules.SrcLeaf:
			t := fmt.Sprintf("p%d", src.Leaf)
			if src.Embed != nil {
				t += ":" + src.Embed.String()
				t = strings.Replace(t, "_shl", "<<", 1)
			}
			toks = append(toks, t)
		}
	}
	return strings.Join(toks, " ")
}

// LoadLibrary parses a saved library against a loaded target, verifying
// every rule.
func LoadLibrary(b *term.Builder, tgt *isa.Target, text string) (*rules.Library, error) {
	lib := rules.NewLibrary(tgt.Name)
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := LoadRule(b, tgt, line)
		if err != nil {
			return nil, fmt.Errorf("isel: line %d: %w", lineNo, err)
		}
		lib.Add(r)
	}
	return lib, sc.Err()
}

// LoadRule parses and verifies one persisted rule line against a loaded
// target. Verification is VerifyRule — randomized evaluation only, no
// solver — which is what lets the incremental planner re-validate reused
// rules with zero SMT queries. The rule's proof origin is taken from the
// line's trailing source field when present ("loaded" otherwise), so
// provenance survives save/load cycles.
func LoadRule(b *term.Builder, tgt *isa.Target, line string) (*rules.Rule, error) {
	fields := strings.Split(line, "\t")
	if len(fields) < 3 {
		return nil, fmt.Errorf("need at least 3 fields")
	}
	pat, err := pattern.ParseKey(fields[0])
	if err != nil {
		return nil, err
	}
	opSpec := fields[2]
	if opSpec == "-" {
		opSpec = ""
	}
	// Trailing fields, discriminated by shape: "cost:" prefix first (the
	// vector contains a ',' but never an '='), then '='-containing
	// leaf-consts, then the bare source field.
	var leafConsts []string
	var costV cost.Vector
	source := "loaded"
	for _, f := range fields[3:] {
		if strings.HasPrefix(f, "cost:") {
			v, err := cost.ParseVector(strings.TrimPrefix(f, "cost:"))
			if err != nil {
				return nil, err
			}
			costV = v
		} else if strings.Contains(f, "=") {
			leafConsts = strings.Split(f, ",")
		} else if f != "" {
			source = f
		}
	}
	r, err := loadRule(b, tgt, pat, fields[1], opSpec, leafConsts)
	if err != nil {
		return nil, err
	}
	r.Source = source
	// The persisted model cost is preserved verbatim: the loading library
	// may have no Model to restamp it from, and Save → Load → Save must
	// reproduce the artifact byte-identically.
	r.CostV = costV
	return r, nil
}

// loadRule is MustRule with error returns and fixed-immediate support in
// the sequence spec.
func loadRule(b *term.Builder, tgt *isa.Target, pat *pattern.Pattern,
	seqSpec, opSpec string, leafConsts []string) (r *rules.Rule, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("%v", rec)
		}
	}()
	seq, err := parseSeqSpec(b, tgt, seqSpec)
	if err != nil {
		return nil, err
	}
	r = assembleRule(b, tgt, pat, seq, opSpec, leafConsts)
	return r, nil
}

// parseSeqSpec extends MustSeq's grammar with op=value fixed-immediate
// binders.
func parseSeqSpec(b *term.Builder, tgt *isa.Target, spec string) (*isa.Sequence, error) {
	parts := strings.Split(spec, ";")
	var seq *isa.Sequence
	for i, part := range parts {
		part = strings.TrimSpace(part)
		name := part
		var wires []string
		var fixed [][2]string
		flags := false
		if k := strings.IndexByte(part, '['); k >= 0 {
			name = part[:k]
			for _, tok := range strings.Split(strings.TrimSuffix(part[k+1:], "]"), ",") {
				tok = strings.TrimSpace(tok)
				switch {
				case tok == "flags":
					flags = true
				case strings.Contains(tok, "="):
					op, val, _ := strings.Cut(tok, "=")
					fixed = append(fixed, [2]string{op, val})
				case tok != "":
					wires = append(wires, tok)
				}
			}
		}
		inst := tgt.ByName(name)
		if inst == nil {
			return nil, fmt.Errorf("unknown instruction %q", name)
		}
		if i == 0 {
			seq = isa.Single(b, inst)
		} else {
			next, err := isa.Append(b, seq, inst, wires, flags)
			if err != nil {
				return nil, err
			}
			seq = next
		}
		for _, fx := range fixed {
			v, err := strconv.ParseUint(fx[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad fixed immediate %q", fx[1])
			}
			w := 0
			for _, op := range inst.Operands {
				if op.Name == fx[0] {
					w = op.Width
				}
			}
			if w == 0 {
				return nil, fmt.Errorf("no operand %q on %s", fx[0], name)
			}
			next, err := isa.BindImm(b, seq, i, fx[0], bv.New(w, v))
			if err != nil {
				return nil, err
			}
			seq = next
		}
	}
	return seq, nil
}

// assembleRule mirrors MustRule's operand/const handling over an
// already-built sequence (panics recovered by loadRule).
func assembleRule(b *term.Builder, tgt *isa.Target, pat *pattern.Pattern,
	seq *isa.Sequence, opSpec string, leafConsts []string) *rules.Rule {
	toks := strings.Fields(opSpec)
	if len(toks) != len(seq.Inputs) {
		panic(fmt.Sprintf("%d operand tokens for %d inputs", len(toks), len(seq.Inputs)))
	}
	r := &rules.Rule{Pattern: pat, Seq: seq}
	leaves := pat.Leaves()
	for k, tok := range toks {
		in := seq.Inputs[k]
		switch {
		case strings.HasPrefix(tok, "="):
			v, err := strconv.ParseInt(strings.TrimPrefix(tok, "="), 0, 64)
			if err != nil {
				panic("bad const token " + tok)
			}
			r.Operands = append(r.Operands, rules.OperandSource{
				Kind: rules.SrcConst, Const: bv.NewInt(in.Op.Width, v)})
		case strings.HasPrefix(tok, "p"):
			body := strings.TrimPrefix(tok, "p")
			leafStr, embedStr, hasEmbed := strings.Cut(body, ":")
			leaf, err := strconv.Atoi(leafStr)
			if err != nil || leaf >= len(leaves) {
				panic("bad leaf token " + tok)
			}
			src := rules.OperandSource{Kind: rules.SrcLeaf, Leaf: leaf}
			if hasEmbed {
				src.Embed = parseEmbed(embedStr)
			}
			r.Operands = append(r.Operands, src)
		default:
			panic("bad operand token " + tok)
		}
	}
	for _, lc := range leafConsts {
		idxStr, valStr, ok := strings.Cut(lc, "=")
		if !ok {
			panic("bad leaf const " + lc)
		}
		idx, err1 := strconv.Atoi(idxStr)
		val, err2 := strconv.ParseInt(valStr, 0, 64)
		if err1 != nil || err2 != nil || idx >= len(leaves) {
			panic("bad leaf const " + lc)
		}
		if r.LeafConsts == nil {
			r.LeafConsts = map[int]bv.BV{}
		}
		r.LeafConsts[idx] = bv.NewInt(leaves[idx].Ty.Bits, val)
	}
	if err := VerifyRule(b, r); err != nil {
		panic(fmt.Sprintf("loaded rule is wrong: %v", err))
	}
	return r
}
