package isel

import (
	"testing"

	"iselgen/internal/gmir"
	"iselgen/internal/obs"
)

// withObs attaches a fresh Obs to the backend for the duration of the
// test (the package's backends are shared across tests).
func withObs(t *testing.T, bk *Backend) *obs.Obs {
	t.Helper()
	o := obs.New()
	bk.Obs = o
	t.Cleanup(func() { bk.Obs = nil })
	return o
}

// TestSelectionProvenance: rule-based selection records one decision
// per chosen root with Via "rule" and the winning sequence, plus a span
// and a latency observation for the function.
func TestSelectionProvenance(t *testing.T) {
	o := withObs(t, a64Set.Handwritten)

	fb := gmir.NewFunc("prov")
	a := fb.Param(gmir.S64)
	b := fb.Param(gmir.S64)
	fb.Ret(fb.Add(a, fb.Shl(b, fb.Const(gmir.S64, 2))))
	f := fb.MustFinish()
	_, rep := a64Set.Handwritten.Select(f)
	if rep.Fallback {
		t.Fatalf("unexpected fallback: %s", rep.FallbackReason)
	}

	sels := o.Prov.Selections()
	if len(sels) == 0 {
		t.Fatalf("no selection decisions recorded")
	}
	var viaRule int
	for _, d := range sels {
		if d.Fn != "prov" {
			t.Errorf("decision fn = %q, want prov", d.Fn)
		}
		if d.Engine != "greedy" {
			t.Errorf("decision engine = %q, want greedy", d.Engine)
		}
		switch d.Via {
		case "rule":
			viaRule++
			if d.Chosen == "" {
				t.Errorf("Via=rule decision without a chosen sequence: %+v", d)
			}
			if d.Root == "" {
				t.Errorf("decision without root identification: %+v", d)
			}
		case "hook", "none", "fallback":
		default:
			t.Errorf("unknown Via %q", d.Via)
		}
	}
	if viaRule == 0 {
		t.Errorf("no Via=rule decisions for a rule-lowered function: %+v", sels)
	}

	spans := o.Trace.Snapshot()
	var found bool
	for _, s := range spans {
		if s.Name == "isel/select" {
			found = true
		}
	}
	if !found {
		t.Errorf("no isel/select span recorded; spans: %+v", spans)
	}
	if h := o.Metrics.Histogram("isel_select_ns", "", "engine", "greedy"); h.Count() != 1 {
		t.Errorf("isel_select_ns[greedy] count = %d, want 1", h.Count())
	}
}

// TestFallbackProvenance: a function no rule or hook can lower records a
// Via "none" decision for the failing root and a Via "fallback" decision
// for the function, carrying the reason the Report also gives.
func TestFallbackProvenance(t *testing.T) {
	o := withObs(t, a64Set.Handwritten)

	fb := gmir.NewFunc("pop16")
	a := fb.Param(gmir.S16)
	fb.Ret(fb.Ctpop(a))
	f := fb.MustFinish()
	_, rep := a64Set.Handwritten.Select(f)
	if !rep.Fallback {
		t.Fatalf("expected fallback")
	}

	var sawNone, sawFallback bool
	for _, d := range o.Prov.Selections() {
		switch d.Via {
		case "none":
			sawNone = true
		case "fallback":
			sawFallback = true
			if d.Fallback != rep.FallbackReason {
				t.Errorf("fallback reason %q != report %q", d.Fallback, rep.FallbackReason)
			}
		}
	}
	if !sawNone || !sawFallback {
		t.Errorf("want both Via=none and Via=fallback decisions, got none=%v fallback=%v",
			sawNone, sawFallback)
	}
}

// TestOptimalSelectorProvenance: the DP selector labels its decisions
// and latency with engine "optimal".
func TestOptimalSelectorProvenance(t *testing.T) {
	bk := a64Set.Handwritten
	orig := bk.Selector
	bk.Selector = SelOptimal
	t.Cleanup(func() { bk.Selector = orig })
	o := withObs(t, bk)

	fb := gmir.NewFunc("opt")
	a := fb.Param(gmir.S64)
	b := fb.Param(gmir.S64)
	fb.Ret(fb.Sub(fb.Add(a, b), b))
	f := fb.MustFinish()
	_, rep := bk.Select(f)
	if rep.Fallback {
		t.Fatalf("unexpected fallback: %s", rep.FallbackReason)
	}
	if rep.Selector != "optimal" {
		t.Fatalf("selector = %q", rep.Selector)
	}

	sels := o.Prov.Selections()
	if len(sels) == 0 {
		t.Fatalf("no decisions from the optimal selector")
	}
	for _, d := range sels {
		if d.Engine != "optimal" {
			t.Errorf("decision engine = %q, want optimal", d.Engine)
		}
	}
	if h := o.Metrics.Histogram("isel_select_ns", "", "engine", "optimal"); h.Count() != 1 {
		t.Errorf("isel_select_ns[optimal] count = %d, want 1", h.Count())
	}
}

// TestNoObsNoProvenance: with no Obs attached, selection runs
// identically and assembles nothing.
func TestNoObsNoProvenance(t *testing.T) {
	fb := gmir.NewFunc("plain")
	a := fb.Param(gmir.S64)
	fb.Ret(fb.Add(a, a))
	f := fb.MustFinish()
	_, rep := a64Set.Handwritten.Select(f)
	if rep.Fallback {
		t.Fatalf("unexpected fallback: %s", rep.FallbackReason)
	}
}
