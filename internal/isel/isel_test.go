package isel

import (
	"strings"
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/gmir"
	"iselgen/internal/isa"
	"iselgen/internal/isa/aarch64"
	"iselgen/internal/isa/riscv"
	"iselgen/internal/sim"
	"iselgen/internal/term"
)

var (
	a64Target *isa.Target
	a64Set    *A64Backends
	rvTarget  *isa.Target
	rvSet     *RVBackends
)

func init() {
	b := term.NewBuilder()
	var err error
	a64Target, err = aarch64.Load(b)
	if err != nil {
		panic(err)
	}
	a64Set = NewA64Backends(b, a64Target)
	b2 := term.NewBuilder()
	rvTarget, err = riscv.Load(b2)
	if err != nil {
		panic(err)
	}
	rvSet = NewRVBackends(b2, rvTarget)
}

// runBoth selects and simulates f on the backend, and cross-checks the
// result against the gMIR interpreter on the given inputs. Returns the
// simulation statistics of the last input.
func runBoth(t *testing.T, bk *Backend, f *gmir.Function, argSets [][]bv.BV,
	initMem func(*gmir.Memory)) sim.Result {
	t.Helper()
	mf, rep := bk.Select(f)
	if rep.Fallback {
		t.Fatalf("%s: fallback: %s", bk.Name, rep.FallbackReason)
	}
	var last sim.Result
	for _, args := range argSets {
		refMem := gmir.NewMemory()
		if initMem != nil {
			initMem(refMem)
		}
		ip := &gmir.Interp{Mem: refMem}
		want, err := ip.Run(f, args...)
		if err != nil {
			t.Fatal(err)
		}
		simMem := gmir.NewMemory()
		if initMem != nil {
			initMem(simMem)
		}
		m := &sim.Machine{Mem: simMem}
		got, err := m.Run(mf, args)
		if err != nil {
			t.Fatalf("%s: %v\n%s", bk.Name, err, mf)
		}
		if !got.HasRet || sim.Adjust(got.Ret, want.W()) != want {
			t.Fatalf("%s: result %v, want %v (args %v)\n%s", bk.Name, got.Ret, want, args, mf)
		}
		last = got
	}
	return last
}

func allA64() []*Backend {
	return []*Backend{a64Set.Handwritten, a64Set.DAG, a64Set.Naive}
}

func allRV() []*Backend {
	return []*Backend{rvSet.Handwritten, rvSet.DAG}
}

func TestStraightLineArith(t *testing.T) {
	fb := gmir.NewFunc("arith")
	a := fb.Param(gmir.S64)
	b := fb.Param(gmir.S64)
	c4 := fb.Const(gmir.S64, 4)
	sh := fb.Shl(b, c4)
	sum := fb.Add(a, sh)
	prod := fb.Mul(sum, b)
	diff := fb.Sub(prod, a)
	fb.Ret(diff)
	f := fb.MustFinish()

	rng := bv.NewRNG(1)
	var argSets [][]bv.BV
	for i := 0; i < 10; i++ {
		argSets = append(argSets, []bv.BV{rng.BV(64), rng.BV(64)})
	}
	for _, bk := range append(allA64(), allRV()...) {
		runBoth(t, bk, f, argSets, nil)
	}
}

func TestShiftAddFoldsOnHandwritten(t *testing.T) {
	// The handwritten backend must fold shl+add into ADDXrs_lsl; the
	// naive backend must not.
	fb := gmir.NewFunc("fold")
	a := fb.Param(gmir.S64)
	b := fb.Param(gmir.S64)
	sh := fb.Shl(b, fb.Const(gmir.S64, 4))
	fb.Ret(fb.Add(a, sh))
	f := fb.MustFinish()

	mf, rep := a64Set.Handwritten.Select(f)
	if rep.Fallback {
		t.Fatal(rep.FallbackReason)
	}
	s := mf.String()
	if !strings.Contains(s, "ADDXrs_lsl") {
		t.Errorf("handwritten did not fold:\n%s", s)
	}
	mfn, _ := a64Set.Naive.Select(f)
	if strings.Contains(mfn.String(), "ADDXrs_lsl") {
		t.Errorf("naive backend folded:\n%s", mfn.String())
	}
	// And the fold must be cheaper.
	if mf.NumInsts() >= mfn.NumInsts() {
		t.Errorf("fold not cheaper: %d vs %d", mf.NumInsts(), mfn.NumInsts())
	}
}

func TestLoopWithBranchAndPhi(t *testing.T) {
	// sum of i*i for i in [0,n).
	fb := gmir.NewFunc("sumsq")
	n := fb.Param(gmir.S64)
	entry := fb.Block()
	loop := fb.NewBlock()
	exit := fb.NewBlock()
	zero := fb.Const(gmir.S64, 0)
	fb.Br(loop)
	fb.SetBlock(loop)
	i := fb.Phi(gmir.S64, zero, entry)
	acc := fb.Phi(gmir.S64, zero, entry)
	sq := fb.Mul(i, i)
	acc2 := fb.Add(acc, sq)
	i2 := fb.Add(i, fb.Const(gmir.S64, 1))
	fb.AddPhiIncoming(i, i2, loop)
	fb.AddPhiIncoming(acc, acc2, loop)
	done := fb.ICmp(gmir.PredUGE, i2, n)
	fb.BrCond(done, exit, loop)
	fb.SetBlock(exit)
	fb.Ret(acc2)
	f := fb.MustFinish()

	argSets := [][]bv.BV{{bv.New(64, 1)}, {bv.New(64, 7)}, {bv.New(64, 100)}}
	for _, bk := range append(allA64(), allRV()...) {
		res := runBoth(t, bk, f, argSets, nil)
		if res.Cycles == 0 {
			t.Errorf("%s: zero cycles", bk.Name)
		}
	}
}

func TestBranchFoldingQuality(t *testing.T) {
	// icmp+brcond must fuse into compare-and-branch on the fancy
	// backends: fewer dynamic instructions than the naive one.
	fb := gmir.NewFunc("brfold")
	n := fb.Param(gmir.S64)
	entry := fb.Block()
	loop := fb.NewBlock()
	exit := fb.NewBlock()
	zero := fb.Const(gmir.S64, 0)
	fb.Br(loop)
	fb.SetBlock(loop)
	i := fb.Phi(gmir.S64, zero, entry)
	i2 := fb.Add(i, fb.Const(gmir.S64, 1))
	fb.AddPhiIncoming(i, i2, loop)
	done := fb.ICmp(gmir.PredUGE, i2, n)
	fb.BrCond(done, exit, loop)
	fb.SetBlock(exit)
	fb.Ret(i2)
	f := fb.MustFinish()

	args := [][]bv.BV{{bv.New(64, 50)}}
	fancy := runBoth(t, a64Set.Handwritten, f, args, nil)
	naive := runBoth(t, a64Set.Naive, f, args, nil)
	if fancy.Insts >= naive.Insts {
		t.Errorf("branch folding did not reduce instructions: %d vs %d",
			fancy.Insts, naive.Insts)
	}
}

func TestMemoryKernel(t *testing.T) {
	// dst[i] = src[i]*3 + 1 over bytes; exercises extending loads,
	// truncating stores, and addressing folds.
	fb := gmir.NewFunc("bytes")
	src := fb.Param(gmir.P0)
	dst := fb.Param(gmir.P0)
	n := fb.Param(gmir.S64)
	entry := fb.Block()
	loop := fb.NewBlock()
	exit := fb.NewBlock()
	zero := fb.Const(gmir.S64, 0)
	fb.Br(loop)
	fb.SetBlock(loop)
	i := fb.Phi(gmir.S64, zero, entry)
	sp := fb.PtrAdd(src, i)
	v := fb.Load(gmir.S64, sp, 8)
	v3 := fb.Mul(v, fb.Const(gmir.S64, 3))
	v31 := fb.Add(v3, fb.Const(gmir.S64, 1))
	dp := fb.PtrAdd(dst, i)
	fb.Store(v31, dp, 8)
	i2 := fb.Add(i, fb.Const(gmir.S64, 1))
	fb.AddPhiIncoming(i, i2, loop)
	done := fb.ICmp(gmir.PredUGE, i2, n)
	fb.BrCond(done, exit, loop)
	fb.SetBlock(exit)
	v0 := fb.Load(gmir.S64, dst, 8)
	fb.Ret(v0)
	f := fb.MustFinish()

	init := func(m *gmir.Memory) {
		for i := 0; i < 64; i++ {
			m.Store(0x1000+uint64(i), bv.New(8, uint64(i*7%256)), 8)
		}
	}
	args := [][]bv.BV{{bv.New(64, 0x1000), bv.New(64, 0x2000), bv.New(64, 32)}}
	for _, bk := range append(allA64(), allRV()...) {
		runBoth(t, bk, f, args, init)
	}
}

func TestSelectAndCompare(t *testing.T) {
	// max3(a, b, c) via selects.
	fb := gmir.NewFunc("max3")
	a := fb.Param(gmir.S64)
	b := fb.Param(gmir.S64)
	c := fb.Param(gmir.S64)
	m1 := fb.Select(fb.ICmp(gmir.PredSGT, a, b), a, b)
	m2 := fb.Select(fb.ICmp(gmir.PredSGT, m1, c), m1, c)
	fb.Ret(m2)
	f := fb.MustFinish()

	rng := bv.NewRNG(3)
	var argSets [][]bv.BV
	for i := 0; i < 20; i++ {
		argSets = append(argSets, []bv.BV{rng.BV(64), rng.BV(64), rng.BV(64)})
	}
	for _, bk := range append(allA64(), allRV()...) {
		runBoth(t, bk, f, argSets, nil)
	}
}

func TestZextICmpChains(t *testing.T) {
	// count = zext(a<b) + zext(b==c) + zext(a>=c unsigned)
	fb := gmir.NewFunc("cmps")
	a := fb.Param(gmir.S64)
	b := fb.Param(gmir.S64)
	c := fb.Param(gmir.S64)
	z1 := fb.ZExt(gmir.S64, fb.ICmp(gmir.PredSLT, a, b))
	z2 := fb.ZExt(gmir.S64, fb.ICmp(gmir.PredEQ, b, c))
	z3 := fb.ZExt(gmir.S64, fb.ICmp(gmir.PredUGE, a, c))
	fb.Ret(fb.Add(fb.Add(z1, z2), z3))
	f := fb.MustFinish()
	rng := bv.NewRNG(4)
	var argSets [][]bv.BV
	for i := 0; i < 20; i++ {
		argSets = append(argSets, []bv.BV{rng.BV(64), rng.BV(64), rng.BV(64)})
	}
	for _, bk := range append(allA64(), allRV()...) {
		runBoth(t, bk, f, argSets, nil)
	}
}

func TestConstantsAllSizes(t *testing.T) {
	consts := []uint64{0, 1, 42, 4095, 4096, 0xffff, 0x12340000,
		0xffffffff, 0x1234567890abcdef, ^uint64(0), 0xbeef000000000000}
	for _, cv := range consts {
		fb := gmir.NewFunc("konst")
		a := fb.Param(gmir.S64)
		fb.Ret(fb.Add(a, fb.Const(gmir.S64, cv)))
		f := fb.MustFinish()
		args := [][]bv.BV{{bv.New(64, 17)}}
		for _, bk := range append(allA64(), allRV()...) {
			runBoth(t, bk, f, args, nil)
		}
	}
	// Smart materialization beats naive chunking on a value with only
	// high bits set (the paper's §VIII-C example).
	fb := gmir.NewFunc("hi16")
	a := fb.Param(gmir.S64)
	fb.Ret(fb.Or(a, fb.Const(gmir.S64, 0xbeef000000000000)))
	f := fb.MustFinish()
	smart, _ := a64Set.Handwritten.Select(f)
	fbn := gmir.NewFunc("hi16b")
	an := fbn.Param(gmir.S64)
	fbn.Ret(fbn.Or(an, fbn.Const(gmir.S64, 0xbeef000000000000)))
	fn := fbn.MustFinish()
	naive, _ := a64Set.Naive.Select(fn)
	if smart.NumInsts() >= naive.NumInsts() {
		t.Errorf("smart constants not smaller: %d vs %d\n%s", smart.NumInsts(), naive.NumInsts(), smart)
	}
}

func TestDivRem(t *testing.T) {
	fb := gmir.NewFunc("divrem")
	a := fb.Param(gmir.S64)
	b := fb.Param(gmir.S64)
	q := fb.UDiv(a, b)
	r := fb.SRem(a, b)
	fb.Ret(fb.Xor(q, r))
	f := fb.MustFinish()
	// AArch64 lacks a remainder instruction: legalize rem away first.
	gmir.LowerRem(f)
	rng := bv.NewRNG(5)
	var argSets [][]bv.BV
	for i := 0; i < 10; i++ {
		argSets = append(argSets, []bv.BV{rng.BV(64), rng.BV(64)})
	}
	argSets = append(argSets, []bv.BV{bv.New(64, 5), bv.Zero(64)}) // div by zero
	for _, bk := range allA64() {
		runBoth(t, bk, f, argSets, nil)
	}
	// RISC-V has REM/REMU natively.
	fb2 := gmir.NewFunc("divrem2")
	a2 := fb2.Param(gmir.S64)
	b2 := fb2.Param(gmir.S64)
	fb2.Ret(fb2.Xor(fb2.UDiv(a2, b2), fb2.SRem(a2, b2)))
	f2 := fb2.MustFinish()
	for _, bk := range allRV() {
		runBoth(t, bk, f2, argSets, nil)
	}
}

func TestFallbackReported(t *testing.T) {
	// A function using an op with no rule and no hook must report
	// fallback, not crash: the G_CTPOP hook expansion only handles the
	// legal 32/64-bit widths, and nothing covers a raw s16 popcount.
	fb := gmir.NewFunc("pop")
	a := fb.Param(gmir.S16)
	fb.Ret(fb.Ctpop(a))
	f := fb.MustFinish()
	_, rep := a64Set.Handwritten.Select(f)
	if !rep.Fallback {
		t.Error("expected fallback for ctpop")
	}
	if rep.FallbackReason == "" {
		t.Error("empty fallback reason")
	}
}

func TestReportCountsRules(t *testing.T) {
	fb := gmir.NewFunc("counts")
	a := fb.Param(gmir.S64)
	b := fb.Param(gmir.S64)
	fb.Ret(fb.Add(a, fb.Shl(b, fb.Const(gmir.S64, 2))))
	f := fb.MustFinish()
	_, rep := a64Set.Handwritten.Select(f)
	if rep.RuleInsts < 2 {
		t.Errorf("rule insts = %d", rep.RuleInsts)
	}
	if len(rep.RulesUsed) == 0 {
		t.Error("no rules recorded")
	}
}
