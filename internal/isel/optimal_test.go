package isel

import (
	"strings"
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/cost"
	"iselgen/internal/gmir"
)

// optimalSuite builds a small program mix: straight-line arithmetic
// with a foldable shift, a loop with phis, selects, and constants of
// several widths — enough to exercise plans, bool roots, and hooks.
func optimalSuite() []*gmir.Function {
	var fs []*gmir.Function

	fb := gmir.NewFunc("arith")
	a := fb.Param(gmir.S64)
	b := fb.Param(gmir.S64)
	sh := fb.Shl(b, fb.Const(gmir.S64, 4))
	sum := fb.Add(a, sh)
	fb.Ret(fb.Sub(fb.Mul(sum, b), a))
	fs = append(fs, fb.MustFinish())

	fb = gmir.NewFunc("sumsq")
	n := fb.Param(gmir.S64)
	entry := fb.Block()
	loop := fb.NewBlock()
	exit := fb.NewBlock()
	zero := fb.Const(gmir.S64, 0)
	fb.Br(loop)
	fb.SetBlock(loop)
	i := fb.Phi(gmir.S64, zero, entry)
	acc := fb.Phi(gmir.S64, zero, entry)
	acc2 := fb.Add(acc, fb.Mul(i, i))
	i2 := fb.Add(i, fb.Const(gmir.S64, 1))
	fb.AddPhiIncoming(i, i2, loop)
	fb.AddPhiIncoming(acc, acc2, loop)
	fb.BrCond(fb.ICmp(gmir.PredUGE, i2, n), exit, loop)
	fb.SetBlock(exit)
	fb.Ret(acc2)
	fs = append(fs, fb.MustFinish())

	fb = gmir.NewFunc("max")
	a = fb.Param(gmir.S64)
	b = fb.Param(gmir.S64)
	fb.Ret(fb.Select(fb.ICmp(gmir.PredSGT, a, b), a, b))
	fs = append(fs, fb.MustFinish())

	fb = gmir.NewFunc("konst")
	a = fb.Param(gmir.S64)
	fb.Ret(fb.Add(fb.Or(a, fb.Const(gmir.S64, 0xbeef000000000000)),
		fb.Const(gmir.S64, 42)))
	fs = append(fs, fb.MustFinish())

	return fs
}

// The optimal selector must never be statically more expensive than
// greedy under the model (the dual-emission floor makes this a hard
// invariant), and must stay semantically equivalent.
func TestOptimalNoWorseThanGreedy(t *testing.T) {
	rng := bv.NewRNG(11)
	for _, f := range optimalSuite() {
		var argSets [][]bv.BV
		for i := 0; i < 8; i++ {
			args := make([]bv.BV, len(f.Params))
			for j := range args {
				args[j] = bv.New(64, rng.BV(64).Lo%200)
			}
			argSets = append(argSets, args)
		}
		for _, bk := range append(allA64(), allRV()...) {
			opt := OptimalVariant(bk, nil)
			mg, rg := bk.Select(f)
			mo, ro := opt.Select(f)
			if rg.Fallback != ro.Fallback {
				t.Fatalf("%s/%s: fallback disagreement: greedy=%v optimal=%v (%s / %s)",
					bk.Name, f.Name, rg.Fallback, ro.Fallback,
					rg.FallbackReason, ro.FallbackReason)
			}
			if rg.Fallback {
				continue
			}
			if ro.Selector != "optimal" {
				t.Errorf("%s/%s: report selector = %q", bk.Name, f.Name, ro.Selector)
			}
			model := opt.Model
			cg, co := cost.StaticOf(mg, model), cost.StaticOf(mo, model)
			if cg.Less(co) {
				t.Errorf("%s/%s: optimal statically worse: %v vs greedy %v\n-- optimal --\n%s\n-- greedy --\n%s",
					bk.Name, f.Name, co, cg, mo, mg)
			}
			runBoth(t, opt, f, argSets, nil)
		}
	}
}

// With a cost table that makes the fused shift-add expensive, greedy
// (largest-pattern-first) still folds and pays; the DP must instead
// tile with the two cheap single-op rules — a strict static win.
func TestOptimalStrictWinOnSkewedTable(t *testing.T) {
	fb := gmir.NewFunc("fold")
	a := fb.Param(gmir.S64)
	b := fb.Param(gmir.S64)
	fb.Ret(fb.Add(a, fb.Shl(b, fb.Const(gmir.S64, 4))))
	f := fb.MustFinish()

	model := cost.FromTarget(a64Target)
	model.Latency["ADDXrs_lsl"] = 50
	model.Size["ADDXrs_lsl"] = 50

	mg, rg := a64Set.Handwritten.Select(f)
	if rg.Fallback {
		t.Fatal(rg.FallbackReason)
	}
	if !strings.Contains(mg.String(), "ADDXrs_lsl") {
		t.Fatalf("greedy did not fold (test premise broken):\n%s", mg)
	}

	opt := OptimalVariant(a64Set.Handwritten, model)
	mo, ro := opt.Select(f)
	if ro.Fallback {
		t.Fatal(ro.FallbackReason)
	}
	if strings.Contains(mo.String(), "ADDXrs_lsl") {
		t.Errorf("optimal used the expensive fused form:\n%s", mo)
	}
	cg, co := cost.StaticOf(mg, model), cost.StaticOf(mo, model)
	if !co.Less(cg) {
		t.Errorf("expected strict win: optimal %v vs greedy %v", co, cg)
	}

	// Same semantics regardless of tiling.
	rng := bv.NewRNG(7)
	var argSets [][]bv.BV
	for i := 0; i < 10; i++ {
		argSets = append(argSets, []bv.BV{rng.BV(64), rng.BV(64)})
	}
	runBoth(t, opt, f, argSets, nil)
}

// OptimalVariant defaults: nil model falls back to the target-derived
// table; the original backend is untouched.
func TestOptimalVariantDefaults(t *testing.T) {
	opt := OptimalVariant(a64Set.Naive, nil)
	if opt.Selector != SelOptimal || opt.Model == nil {
		t.Fatalf("variant not configured: sel=%v model=%v", opt.Selector, opt.Model)
	}
	if opt.Model.Target != a64Target.Name {
		t.Errorf("model target = %q", opt.Model.Target)
	}
	if a64Set.Naive.Selector != SelGreedy || a64Set.Naive.Model != nil {
		t.Error("OptimalVariant mutated the source backend")
	}
	if SelGreedy.String() != "greedy" || SelOptimal.String() != "optimal" {
		t.Error("SelectorKind.String mismatch")
	}
}
