package isel

import (
	"strings"
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/gmir"
	"iselgen/internal/isa/aarch64"
	"iselgen/internal/mir"
	"iselgen/internal/pattern"
	"iselgen/internal/sim"
	"iselgen/internal/term"
)

func TestPatternKeyRoundTrip(t *testing.T) {
	pats := []*pattern.Pattern{
		pattern.New(pattern.Op(gmir.GAdd, gmir.S64,
			pattern.Leaf(gmir.S64),
			pattern.Op(gmir.GShl, gmir.S64, pattern.Leaf(gmir.S64), pattern.ImmLeaf(gmir.S64)))),
		pattern.New(pattern.Cmp(gmir.PredSLT, pattern.Leaf(gmir.S32), pattern.ImmLeaf(gmir.S32))),
		pattern.New(pattern.LoadOp(gmir.GSLoad, gmir.S64, 16,
			pattern.Op(gmir.GPtrAdd, gmir.P0, pattern.Leaf(gmir.S64), pattern.ImmLeaf(gmir.S64)))),
		pattern.New(pattern.StoreOp(8, pattern.Leaf(gmir.S32), pattern.Leaf(gmir.P0))),
	}
	for _, p := range pats {
		got, err := pattern.ParseKey(p.Key())
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if got.Key() != p.Key() {
			t.Errorf("roundtrip %q -> %q", p.Key(), got.Key())
		}
	}
	// Malformed keys fail cleanly.
	for _, bad := range []string{"", "(", "(1:64", "x64", "(1:64 r64) junk"} {
		if _, err := pattern.ParseKey(bad); err == nil {
			t.Errorf("no error for %q", bad)
		}
	}
}

func TestLibrarySaveLoadRoundTrip(t *testing.T) {
	b := term.NewBuilder()
	tgt, err := aarch64.Load(b)
	if err != nil {
		t.Fatal(err)
	}
	lib := buildA64Handwritten(b, tgt, true)
	text := SaveLibrary(lib)
	if !strings.Contains(text, "ADDXrs_lsl") {
		t.Fatal("save output incomplete")
	}

	loaded, err := LoadLibrary(b, tgt, text)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != lib.Len() {
		t.Fatalf("loaded %d rules, saved %d", loaded.Len(), lib.Len())
	}
	// The reloaded library must drive selection identically.
	fb := gmir.NewFunc("f")
	x := fb.Param(gmir.S64)
	y := fb.Param(gmir.S64)
	fb.Ret(fb.Add(x, fb.Shl(y, fb.Const(gmir.S64, 3))))
	f := fb.MustFinish()
	bk := &Backend{Name: "loaded", ISA: tgt, Lib: loaded, Hooks: Hooks{
		MatConst:    a64MatConstSmart,
		LowerBrCond: a64LowerBrCond(true),
	}}
	mf, rep := bk.Select(f)
	if rep.Fallback {
		t.Fatalf("fallback: %s", rep.FallbackReason)
	}
	if !strings.Contains(mf.String(), "ADDXrs_lsl") {
		t.Errorf("reloaded rules did not fold:\n%s", mf)
	}
	m := &sim.Machine{}
	res, err := m.Run(mf, []bv.BV{bv.New(64, 5), bv.New(64, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.Lo != 5+2<<3 {
		t.Errorf("result = %d", res.Ret.Lo)
	}
	_ = mir.PNone
}

func TestLoadLibraryRejectsCorruption(t *testing.T) {
	b := term.NewBuilder()
	tgt, err := aarch64.Load(b)
	if err != nil {
		t.Fatal(err)
	}
	// A rule whose operands are swapped must fail verification on load:
	// SUBXrr with reversed operands computes the wrong difference.
	bad := "(" + "4:64 r64 r64)" + "\tSUBXrr\tp1 p0-oops"
	if _, err := LoadLibrary(b, tgt, bad); err == nil {
		t.Error("corrupted operand token accepted")
	}
	// Semantically wrong but syntactically valid: pattern says ADD (op 2),
	// sequence is SUBXrr.
	addKey := pattern.New(pattern.Op(gmir.GAdd, gmir.S64,
		pattern.Leaf(gmir.S64), pattern.Leaf(gmir.S64))).Key()
	wrong := addKey + "\tSUBXrr\tp0 p1"
	if _, err := LoadLibrary(b, tgt, wrong); err == nil {
		t.Error("semantically wrong rule accepted (verification skipped?)")
	}
}
