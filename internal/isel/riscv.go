package isel

import (
	"fmt"

	"iselgen/internal/bv"
	"iselgen/internal/gmir"
	"iselgen/internal/isa"
	"iselgen/internal/mir"
	"iselgen/internal/pattern"
	"iselgen/internal/rules"
	"iselgen/internal/term"
)

// RISC-V backends. The base ISA has no conditional select, so G_SELECT
// uses the branch-free mask idiom in a hook (LLVM lowers it with a
// Select pseudo expanded in C++, which is exactly what the paper's
// Table III counts as non-declarative selection). There is no FastISel
// for RISC-V (paper Fig. 11), so only handwritten/DAG/naive-free
// backends exist; the "naive" role is filled by the handwritten library
// stripped of folds, used for completeness checks.

// RVBackends bundles the RISC-V baselines.
type RVBackends struct {
	Handwritten *Backend
	DAG         *Backend
}

// rvMatConstSmart materializes constants with the standard RISC-V
// recipes: ADDI for 12-bit, LUI+ADDIW for 32-bit sign-extendable, and a
// shift-add chain for the rest.
func rvMatConstSmart(c *Ctx, v bv.BV) (mir.Reg, bool) {
	if v.W() > 64 {
		return 0, false
	}
	v64 := v.ZExt(64)
	dst := c.NewReg()
	// Zero.
	if v64.IsZero() {
		c.Emit(&mir.Inst{Meta: c.Inst("MVZERO"), Dsts: []mir.Reg{dst}})
		return dst, true
	}
	// 12-bit signed.
	if e, ok := (rules.Embed{Width: 12, Signed: true}).Decode(v64); ok {
		zero := c.NewReg()
		c.Emit(&mir.Inst{Meta: c.Inst("MVZERO"), Dsts: []mir.Reg{zero}})
		c.Emit(&mir.Inst{Meta: c.Inst("ADDI"), Dsts: []mir.Reg{dst},
			Args: []mir.Operand{mir.R(zero), mir.I(e)}})
		return dst, true
	}
	// 32-bit sign-extendable: LUI (+ ADDIW).
	if v64.Trunc(32).SExt(64) == v64 {
		lo12 := v64.Trunc(12)
		hi20 := v64.Trunc(32).Sub(lo12.SExt(32)).LShrN(12).Trunc(20)
		c.Emit(&mir.Inst{Meta: c.Inst("LUI"), Dsts: []mir.Reg{dst},
			Args: []mir.Operand{mir.I(hi20)}})
		if !lo12.IsZero() {
			c.Emit(&mir.Inst{Meta: c.Inst("ADDIW"), Dsts: []mir.Reg{dst},
				Args: []mir.Operand{mir.R(dst), mir.I(lo12)}})
		}
		return dst, true
	}
	// General 64-bit constant: the canonical shift-or chain, built in
	// 11-bit chunks so every ORI immediate stays non-negative (ORI
	// sign-extends its 12-bit immediate).
	return rvMatConst64(c, v64)
}

// rvMatConst64 emits a shift-or chain for a full 64-bit constant:
// seed with the top 9 bits, then five rounds of SLLI 11 + ORI chunk.
func rvMatConst64(c *Ctx, v bv.BV) (mir.Reg, bool) {
	val := v.Lo
	dst := c.NewReg()
	zero := c.NewReg()
	c.Emit(&mir.Inst{Meta: c.Inst("MVZERO"), Dsts: []mir.Reg{zero}})
	c.Emit(&mir.Inst{Meta: c.Inst("ADDI"), Dsts: []mir.Reg{dst},
		Args: []mir.Operand{mir.R(zero), mir.I(bv.New(12, val>>55))}})
	rem := 55
	for rem > 0 {
		step := 11
		if rem < step {
			step = rem
		}
		rem -= step
		chunk := val >> uint(rem) & (1<<uint(step) - 1)
		c.Emit(&mir.Inst{Meta: c.Inst("SLLI"), Dsts: []mir.Reg{dst},
			Args: []mir.Operand{mir.R(dst), mir.I(bv.New(6, uint64(step)))}})
		if chunk != 0 {
			c.Emit(&mir.Inst{Meta: c.Inst("ORI"), Dsts: []mir.Reg{dst},
				Args: []mir.Operand{mir.R(dst), mir.I(bv.New(12, chunk))}})
		}
	}
	return dst, true
}

// rvLowerBrCond folds icmp into the fused compare-and-branch
// instructions; otherwise branches on the boolean against zero.
func rvLowerBrCond(fold bool) func(c *Ctx, cond gmir.Value, taken int, invert bool) bool {
	branchOf := map[gmir.Pred]struct {
		name string
		swap bool
	}{
		gmir.PredEQ: {"BEQ", false}, gmir.PredNE: {"BNE", false},
		gmir.PredSLT: {"BLT", false}, gmir.PredSGE: {"BGE", false},
		gmir.PredULT: {"BLTU", false}, gmir.PredUGE: {"BGEU", false},
		gmir.PredSGT: {"BLT", true}, gmir.PredSLE: {"BGE", true},
		gmir.PredUGT: {"BLTU", true}, gmir.PredUGE + 100: {"", false},
	}
	return func(c *Ctx, cond gmir.Value, taken int, invert bool) bool {
		dummy := mir.I(bv.Zero(12))
		if fold {
			if d := c.DefOf(cond); d != nil && d.Op == gmir.GICmp && c.SingleUse(cond) &&
				!c.Covered(d) && c.TypeOf(d.Args[0]).Bits == 64 {
				pred := d.Pred
				if invert {
					pred = gmir.InvertPred(pred)
				}
				br, ok := branchOf[pred]
				if pred == gmir.PredULE {
					br, ok = struct {
						name string
						swap bool
					}{"BGEU", true}, true
				}
				if ok && br.name != "" {
					a, bb := d.Args[0], d.Args[1]
					if br.swap {
						a, bb = bb, a
					}
					c.MarkCovered(d)
					c.Emit(&mir.Inst{Meta: c.Inst(br.name),
						Args:  []mir.Operand{mir.R(c.ValueReg(a)), mir.R(c.ValueReg(bb)), dummy},
						Succs: []int{taken}})
					return true
				}
			}
		}
		zero := c.NewReg()
		name := "BNE"
		if invert {
			name = "BEQ"
		}
		c.Emit(&mir.Inst{Meta: c.Inst("MVZERO"), Dsts: []mir.Reg{zero}})
		c.Emit(&mir.Inst{Meta: c.Inst(name),
			Args:  []mir.Operand{mir.R(c.ValueReg(cond)), mir.R(zero), dummy},
			Succs: []int{taken}})
		return true
	}
}

// rvLowerInst covers operations the base ISA has no instruction for —
// the C++-style expansions LLVM performs for RISC-V: branch-free select
// (res = y ^ ((x^y) & -cond)), min/max via a comparison feeding the same
// idiom, and the extensions/truncations the legalizer emits around
// widened narrow arithmetic (ANDI masks and shift pairs, since RV64I has
// no dedicated extension instructions). Narrow values keep the usual
// convention that bits above the type width are undefined.
func rvLowerInst(c *Ctx, in *gmir.Inst) bool {
	switch in.Op {
	case gmir.GZExt:
		from := c.TypeOf(in.Args[0]).Bits
		src := c.ValueReg(in.Args[0])
		dst := c.ensureReg(in.Dst)
		switch from {
		case 1:
			// Booleans come from SLT/SLTU-style idioms and hold 0/1.
			c.Emit(&mir.Inst{Pseudo: mir.PCopy, Dsts: []mir.Reg{dst},
				Args: []mir.Operand{mir.R(src)}})
		case 8:
			c.Emit(&mir.Inst{Meta: c.Inst("ANDI"), Dsts: []mir.Reg{dst},
				Args: []mir.Operand{mir.R(src), mir.I(bv.New(12, 0xff))}})
		case 16, 32:
			rvShiftPair(c, dst, src, 64-from, "SRLI")
		default:
			return false
		}
		return true
	case gmir.GSExt:
		from := c.TypeOf(in.Args[0]).Bits
		if from != 8 && from != 16 && from != 32 {
			return false
		}
		rvShiftPair(c, c.ensureReg(in.Dst), c.ValueReg(in.Args[0]), 64-from, "SRAI")
		return true
	case gmir.GTrunc:
		c.Emit(&mir.Inst{Pseudo: mir.PCopy, Dsts: []mir.Reg{c.ensureReg(in.Dst)},
			Args: []mir.Operand{mir.R(c.ValueReg(in.Args[0]))}})
		return true
	case gmir.GSelect:
		if in.Ty.Bits > 64 {
			return false
		}
		cond := c.ValueReg(in.Args[0])
		x := c.ValueReg(in.Args[1])
		y := c.ValueReg(in.Args[2])
		rvMaskSelect(c, c.ensureReg(in.Dst), cond, x, y)
		return true
	case gmir.GUMin, gmir.GUMax, gmir.GSMin, gmir.GSMax:
		if in.Ty.Bits != 64 {
			return false
		}
		a := c.ValueReg(in.Args[0])
		b := c.ValueReg(in.Args[1])
		cond := c.NewReg()
		cmp := "SLTU"
		if in.Op == gmir.GSMin || in.Op == gmir.GSMax {
			cmp = "SLT"
		}
		// cond = a < b; min selects a, max selects b.
		c.Emit(&mir.Inst{Meta: c.Inst(cmp), Dsts: []mir.Reg{cond},
			Args: []mir.Operand{mir.R(a), mir.R(b)}})
		x, y := a, b
		if in.Op == gmir.GUMax || in.Op == gmir.GSMax {
			x, y = b, a
		}
		rvMaskSelect(c, c.ensureReg(in.Dst), cond, x, y)
		return true
	case gmir.GStore:
		// The store instruction truncates rs2 to the access size, which
		// also discards any junk above a narrow value's type width.
		var name string
		switch in.MemBits {
		case 8:
			name = "SB"
		case 16:
			name = "SH"
		case 32:
			name = "SW"
		case 64:
			name = "SD"
		default:
			return false
		}
		c.Emit(&mir.Inst{Meta: c.Inst(name),
			Args: []mir.Operand{mir.R(c.ValueReg(in.Args[0])),
				mir.R(c.ValueReg(in.Args[1])), mir.I(bv.Zero(12))}})
		return true
	case gmir.GCtpop:
		// The legalizer widens G_CTPOP, so only the full width survives.
		if in.Ty.Bits != 64 {
			return false
		}
		rvCtpop64(c, c.ensureReg(in.Dst), c.ValueReg(in.Args[0]))
		return true
	case gmir.GCttz:
		w := in.Ty.Bits
		if w != 32 && w != 64 {
			return false
		}
		// cttz(x) = popcount(~x & (x-1)). Masking the AND back to w bits
		// makes the x == 0 case (an all-ones AND) come out as w.
		src := rvMaskTo(c, c.ValueReg(in.Args[0]), w)
		nx, t1, lo := c.NewReg(), c.NewReg(), c.NewReg()
		c.Emit(&mir.Inst{Meta: c.Inst("NOT"), Dsts: []mir.Reg{nx},
			Args: []mir.Operand{mir.R(src)}})
		c.Emit(&mir.Inst{Meta: c.Inst("ADDI"), Dsts: []mir.Reg{t1},
			Args: []mir.Operand{mir.R(src), mir.I(bv.New(12, 0xfff))}})
		c.Emit(&mir.Inst{Meta: c.Inst("AND"), Dsts: []mir.Reg{lo},
			Args: []mir.Operand{mir.R(nx), mir.R(t1)}})
		rvCtpop64(c, c.ensureReg(in.Dst), rvMaskTo(c, lo, w))
		return true
	case gmir.GCtlz:
		w := in.Ty.Bits
		if w != 32 && w != 64 {
			return false
		}
		// Smear the highest set bit rightward, then clz = w - popcount.
		x := rvMaskTo(c, c.ValueReg(in.Args[0]), w)
		for sh := 1; sh < w; sh <<= 1 {
			t, o := c.NewReg(), c.NewReg()
			c.Emit(&mir.Inst{Meta: c.Inst("SRLI"), Dsts: []mir.Reg{t},
				Args: []mir.Operand{mir.R(x), mir.I(bv.New(6, uint64(sh)))}})
			c.Emit(&mir.Inst{Meta: c.Inst("OR"), Dsts: []mir.Reg{o},
				Args: []mir.Operand{mir.R(x), mir.R(t)}})
			x = o
		}
		pc := c.NewReg()
		rvCtpop64(c, pc, x)
		wreg, _ := rvMatConstSmart(c, bv.New(64, uint64(w)))
		c.Emit(&mir.Inst{Meta: c.Inst("SUB"), Dsts: []mir.Reg{c.ensureReg(in.Dst)},
			Args: []mir.Operand{mir.R(wreg), mir.R(pc)}})
		return true
	case gmir.GBSwap:
		w := in.Ty.Bits
		if w != 32 && w != 64 {
			return false
		}
		src := c.ValueReg(in.Args[0])
		if w == 32 {
			// bswap64(x << 32) leaves bswap32(x) in the low 32 bits (and
			// zeros above), shifting out any junk in the source's high half.
			t := c.NewReg()
			c.Emit(&mir.Inst{Meta: c.Inst("SLLI"), Dsts: []mir.Reg{t},
				Args: []mir.Operand{mir.R(src), mir.I(bv.New(6, 32))}})
			src = t
		}
		rvBSwap64(c, c.ensureReg(in.Dst), src)
		return true
	}
	return false
}

// rvMaskTo zero-extends the low w bits of src into a fresh register (or
// returns src unchanged for w == 64).
func rvMaskTo(c *Ctx, src mir.Reg, w int) mir.Reg {
	if w >= 64 {
		return src
	}
	d := c.NewReg()
	rvShiftPair(c, d, src, 64-w, "SRLI")
	return d
}

// rvCtpop64 emits the classic SWAR population count (pairs, nibbles,
// byte sum via multiply) — RV64IM has no popcount instruction.
func rvCtpop64(c *Ctx, dst, src mir.Reg) {
	bin := func(name string, a, b mir.Reg) mir.Reg {
		d := c.NewReg()
		c.Emit(&mir.Inst{Meta: c.Inst(name), Dsts: []mir.Reg{d},
			Args: []mir.Operand{mir.R(a), mir.R(b)}})
		return d
	}
	shr := func(a mir.Reg, sh int) mir.Reg {
		d := c.NewReg()
		c.Emit(&mir.Inst{Meta: c.Inst("SRLI"), Dsts: []mir.Reg{d},
			Args: []mir.Operand{mir.R(a), mir.I(bv.New(6, uint64(sh)))}})
		return d
	}
	konst := func(v uint64) mir.Reg {
		r, _ := rvMatConstSmart(c, bv.New(64, v))
		return r
	}
	m55, m33, m0f := konst(0x5555555555555555), konst(0x3333333333333333), konst(0x0f0f0f0f0f0f0f0f)
	x1 := bin("SUB", src, bin("AND", shr(src, 1), m55))
	x2 := bin("ADD", bin("AND", x1, m33), bin("AND", shr(x1, 2), m33))
	x3 := bin("AND", bin("ADD", x2, shr(x2, 4)), m0f)
	mul := bin("MUL", x3, konst(0x0101010101010101))
	c.Emit(&mir.Inst{Meta: c.Inst("SRLI"), Dsts: []mir.Reg{dst},
		Args: []mir.Operand{mir.R(mul), mir.I(bv.New(6, 56))}})
}

// rvBSwap64 emits the three-stage byte reversal (bytes, halfwords, words).
func rvBSwap64(c *Ctx, dst, src mir.Reg) {
	stage := func(x mir.Reg, m uint64, sh int, out mir.Reg) mir.Reg {
		mr, _ := rvMatConstSmart(c, bv.New(64, m))
		lo, lsh, hi, hm := c.NewReg(), c.NewReg(), c.NewReg(), c.NewReg()
		amt := mir.I(bv.New(6, uint64(sh)))
		c.Emit(&mir.Inst{Meta: c.Inst("AND"), Dsts: []mir.Reg{lo},
			Args: []mir.Operand{mir.R(x), mir.R(mr)}})
		c.Emit(&mir.Inst{Meta: c.Inst("SLLI"), Dsts: []mir.Reg{lsh},
			Args: []mir.Operand{mir.R(lo), amt}})
		c.Emit(&mir.Inst{Meta: c.Inst("SRLI"), Dsts: []mir.Reg{hi},
			Args: []mir.Operand{mir.R(x), amt}})
		c.Emit(&mir.Inst{Meta: c.Inst("AND"), Dsts: []mir.Reg{hm},
			Args: []mir.Operand{mir.R(hi), mir.R(mr)}})
		c.Emit(&mir.Inst{Meta: c.Inst("OR"), Dsts: []mir.Reg{out},
			Args: []mir.Operand{mir.R(lsh), mir.R(hm)}})
		return out
	}
	x1 := stage(src, 0x00ff00ff00ff00ff, 8, c.NewReg())
	x2 := stage(x1, 0x0000ffff0000ffff, 16, c.NewReg())
	lsh, hi := c.NewReg(), c.NewReg()
	amt := mir.I(bv.New(6, 32))
	c.Emit(&mir.Inst{Meta: c.Inst("SLLI"), Dsts: []mir.Reg{lsh},
		Args: []mir.Operand{mir.R(x2), amt}})
	c.Emit(&mir.Inst{Meta: c.Inst("SRLI"), Dsts: []mir.Reg{hi},
		Args: []mir.Operand{mir.R(x2), amt}})
	c.Emit(&mir.Inst{Meta: c.Inst("OR"), Dsts: []mir.Reg{dst},
		Args: []mir.Operand{mir.R(lsh), mir.R(hi)}})
}

// rvShiftPair emits dst = (src << sh) >>(logical|arith) sh — the RV64I
// extension idiom.
func rvShiftPair(c *Ctx, dst, src mir.Reg, sh int, shiftRight string) {
	tmp := c.NewReg()
	amt := mir.I(bv.New(6, uint64(sh)))
	c.Emit(&mir.Inst{Meta: c.Inst("SLLI"), Dsts: []mir.Reg{tmp},
		Args: []mir.Operand{mir.R(src), amt}})
	c.Emit(&mir.Inst{Meta: c.Inst(shiftRight), Dsts: []mir.Reg{dst},
		Args: []mir.Operand{mir.R(tmp), amt}})
}

// rvMaskSelect emits dst = cond ? x : y via the mask idiom.
func rvMaskSelect(c *Ctx, dst mir.Reg, cond, x, y mir.Reg) {
	mask := c.NewReg()
	xorv := c.NewReg()
	andv := c.NewReg()
	c.Emit(&mir.Inst{Meta: c.Inst("NEG"), Dsts: []mir.Reg{mask}, Args: []mir.Operand{mir.R(cond)}})
	c.Emit(&mir.Inst{Meta: c.Inst("XOR"), Dsts: []mir.Reg{xorv}, Args: []mir.Operand{mir.R(x), mir.R(y)}})
	c.Emit(&mir.Inst{Meta: c.Inst("AND"), Dsts: []mir.Reg{andv}, Args: []mir.Operand{mir.R(xorv), mir.R(mask)}})
	c.Emit(&mir.Inst{Meta: c.Inst("XOR"), Dsts: []mir.Reg{dst}, Args: []mir.Operand{mir.R(y), mir.R(andv)}})
}

// buildRVHandwritten constructs the RISC-V handwritten library; extra
// adds the more aggressive folds of the mature SelectionDAG backend.
func buildRVHandwritten(b *term.Builder, tgt *isa.Target, extra bool) *rules.Library {
	lib := rules.NewLibrary("riscv")
	add := func(p *pattern.Pattern, seqSpec, opSpec string, leafConsts ...string) {
		lib.Add(MustRule(b, tgt, p, seqSpec, opSpec, leafConsts...))
	}
	r := func(bits int) *pattern.Node { return pattern.Leaf(gmir.Type{Bits: bits}) }
	i := func(bits int) *pattern.Node { return pattern.ImmLeaf(gmir.Type{Bits: bits}) }
	op := func(o gmir.Opcode, bits int, args ...*pattern.Node) *pattern.Node {
		return pattern.Op(o, gmir.Type{Bits: bits}, args...)
	}

	// 64-bit ALU.
	add(pattern.New(op(gmir.GAdd, 64, r(64), r(64))), "ADD", "p0 p1")
	add(pattern.New(op(gmir.GAdd, 64, r(64), i(64))), "ADDI", "p0 p1:sext12")
	add(pattern.New(op(gmir.GPtrAdd, 64, r(64), r(64))), "ADD", "p0 p1")
	add(pattern.New(op(gmir.GPtrAdd, 64, r(64), i(64))), "ADDI", "p0 p1:sext12")
	add(pattern.New(op(gmir.GSub, 64, r(64), r(64))), "SUB", "p0 p1")
	add(pattern.New(op(gmir.GAnd, 64, r(64), r(64))), "AND", "p0 p1")
	add(pattern.New(op(gmir.GAnd, 64, r(64), i(64))), "ANDI", "p0 p1:sext12")
	add(pattern.New(op(gmir.GOr, 64, r(64), r(64))), "OR", "p0 p1")
	add(pattern.New(op(gmir.GOr, 64, r(64), i(64))), "ORI", "p0 p1:sext12")
	add(pattern.New(op(gmir.GXor, 64, r(64), r(64))), "XOR", "p0 p1")
	add(pattern.New(op(gmir.GXor, 64, r(64), i(64))), "XORI", "p0 p1:sext12")
	add(pattern.New(op(gmir.GXor, 64, r(64), i(64))), "NOT", "p0", "1=-1")
	add(pattern.New(op(gmir.GShl, 64, r(64), r(64))), "SLL", "p0 p1")
	add(pattern.New(op(gmir.GLShr, 64, r(64), r(64))), "SRL", "p0 p1")
	add(pattern.New(op(gmir.GAShr, 64, r(64), r(64))), "SRA", "p0 p1")
	add(pattern.New(op(gmir.GShl, 64, r(64), i(64))), "SLLI", "p0 p1:zext6")
	add(pattern.New(op(gmir.GLShr, 64, r(64), i(64))), "SRLI", "p0 p1:zext6")
	add(pattern.New(op(gmir.GAShr, 64, r(64), i(64))), "SRAI", "p0 p1:zext6")
	add(pattern.New(op(gmir.GMul, 64, r(64), r(64))), "MUL", "p0 p1")
	add(pattern.New(op(gmir.GUDiv, 64, r(64), r(64))), "DIVU", "p0 p1")
	add(pattern.New(op(gmir.GSDiv, 64, r(64), r(64))), "DIV", "p0 p1")
	add(pattern.New(op(gmir.GURem, 64, r(64), r(64))), "REMU", "p0 p1")
	add(pattern.New(op(gmir.GSRem, 64, r(64), r(64))), "REM", "p0 p1")

	// Comparisons: zext(icmp) idioms.
	cmpPat := func(pred gmir.Pred, lhs, rhs *pattern.Node) *pattern.Node {
		return &pattern.Node{Op: gmir.GICmp, Ty: gmir.S1, Pred: pred,
			Args: []*pattern.Node{lhs, rhs}}
	}
	for _, zw := range []int{64} {
		add(pattern.New(op(gmir.GZExt, zw, cmpPat(gmir.PredSLT, r(64), r(64)))), "SLT", "p0 p1")
		add(pattern.New(op(gmir.GZExt, zw, cmpPat(gmir.PredULT, r(64), r(64)))), "SLTU", "p0 p1")
		add(pattern.New(op(gmir.GZExt, zw, cmpPat(gmir.PredSGT, r(64), r(64)))), "SLT", "p1 p0")
		add(pattern.New(op(gmir.GZExt, zw, cmpPat(gmir.PredUGT, r(64), r(64)))), "SLTU", "p1 p0")
		add(pattern.New(op(gmir.GZExt, zw, cmpPat(gmir.PredSLT, r(64), i(64)))), "SLTI", "p0 p1:sext12")
		add(pattern.New(op(gmir.GZExt, zw, cmpPat(gmir.PredULT, r(64), i(64)))), "SLTIU", "p0 p1:sext12")
		add(pattern.New(op(gmir.GZExt, zw, cmpPat(gmir.PredEQ, r(64), r(64)))), "SUB ; SEQZ[rs1]", "p0 p1")
		add(pattern.New(op(gmir.GZExt, zw, cmpPat(gmir.PredNE, r(64), r(64)))), "SUB ; SNEZ[rs2]", "p0 p1")
		add(pattern.New(op(gmir.GZExt, zw, cmpPat(gmir.PredEQ, r(64), i(64)))), "SEQZ", "p0", "1=0")
		add(pattern.New(op(gmir.GZExt, zw, cmpPat(gmir.PredNE, r(64), i(64)))), "SNEZ", "p0", "1=0")
		add(pattern.New(op(gmir.GZExt, zw, cmpPat(gmir.PredSGE, r(64), r(64)))), "SLT ; XORI[rs1]", "p0 p1 =1")
		add(pattern.New(op(gmir.GZExt, zw, cmpPat(gmir.PredUGE, r(64), r(64)))), "SLTU ; XORI[rs1]", "p0 p1 =1")
		add(pattern.New(op(gmir.GZExt, zw, cmpPat(gmir.PredSLE, r(64), r(64)))), "SLT ; XORI[rs1]", "p1 p0 =1")
		add(pattern.New(op(gmir.GZExt, zw, cmpPat(gmir.PredULE, r(64), r(64)))), "SLTU ; XORI[rs1]", "p1 p0 =1")
	}

	// Loads/stores with folded offsets plus plain forms.
	type ldDef struct {
		op      gmir.Opcode
		ty, mem int
		name    string
	}
	lds := []ldDef{
		{gmir.GLoad, 64, 64, "LD"},
		{gmir.GSLoad, 64, 32, "LW"}, {gmir.GLoad, 64, 32, "LWU"},
		{gmir.GSLoad, 64, 16, "LH"}, {gmir.GLoad, 64, 16, "LHU"},
		{gmir.GSLoad, 64, 8, "LB"}, {gmir.GLoad, 64, 8, "LBU"},
	}
	for _, l := range lds {
		add(pattern.New(pattern.LoadOp(l.op, gmir.Type{Bits: l.ty}, l.mem, r(64))),
			l.name, "p0 =0")
		add(pattern.New(pattern.LoadOp(l.op, gmir.Type{Bits: l.ty}, l.mem,
			op(gmir.GPtrAdd, 64, r(64), i(64)))), l.name, "p0 p1:sext12")
	}
	type stDef struct {
		ty, mem int
		name    string
	}
	sts := []stDef{
		{64, 64, "SD"}, {64, 32, "SW"}, {64, 16, "SH"}, {64, 8, "SB"},
	}
	for _, st := range sts {
		// SD/SW/SH/SB declare (rs2=value, rs1=base, imm).
		add(pattern.New(pattern.StoreOp(st.mem, r(st.ty), r(64))), st.name, "p0 p1 =0")
		add(pattern.New(pattern.StoreOp(st.mem, r(st.ty),
			op(gmir.GPtrAdd, 64, r(64), i(64)))), st.name, "p0 p1 p2:sext12")
	}

	if extra {
		// Mature-backend fold: x < 0 is the sign bit.
		add(pattern.New(op(gmir.GZExt, 64,
			cmpPat(gmir.PredSLT, r(64), i(64)))), "SRLI", "p0 =63", "1=0")
	}
	return lib
}

// NewRVBackends builds the RISC-V baseline backends. The RISC-V target
// spec needs a few alias instructions (SEXTW32 etc.) injected; callers
// use riscvx.LoadWithAliases.
func NewRVBackends(b *term.Builder, tgt *isa.Target) *RVBackends {
	hand := buildRVHandwritten(b, tgt, false)
	dag := buildRVHandwritten(b, tgt, true)
	return &RVBackends{
		Handwritten: &Backend{Name: "globalisel", ISA: tgt, Lib: hand, Hooks: Hooks{
			MatConst:    rvMatConstSmart,
			LowerBrCond: rvLowerBrCond(true),
			LowerInst:   rvLowerInst,
		}},
		DAG: &Backend{Name: "selectiondag", ISA: tgt, Lib: dag, Hooks: Hooks{
			MatConst:    rvMatConstSmart,
			LowerBrCond: rvLowerBrCond(true),
			LowerInst:   rvLowerInst,
		}},
	}
}

// NewRVSynth wraps a synthesized RISC-V library with the manual imports.
func NewRVSynth(tgt *isa.Target, lib *rules.Library) *Backend {
	return &Backend{Name: "synth", ISA: tgt, Lib: lib, Hooks: Hooks{
		MatConst:    rvMatConstSmart,
		LowerBrCond: rvLowerBrCond(true),
		LowerInst:   rvLowerInst,
	}}
}

var _ = fmt.Sprintf
