package isel

import (
	"fmt"

	"iselgen/internal/bv"
	"iselgen/internal/gmir"
	"iselgen/internal/isa"
	"iselgen/internal/mir"
	"iselgen/internal/pattern"
	"iselgen/internal/rules"
	"iselgen/internal/term"
)

// This file provides the AArch64 backends: hook implementations (branch
// lowering, constant materialization — LLVM's C++ analog) and the
// handwritten rule libraries used as baselines:
//
//   - the "GlobalISel analog": a full handwritten library;
//   - the "SelectionDAG analog": the same plus extra folds and smarter
//     constant materialization (the most mature backend, as in the paper);
//   - the "FastISel analog": single-instruction rules only, no folds,
//     naive constants.
//
// The synthesized backend couples the generated library with the same
// hook set the handwritten one uses, mirroring the paper's manual
// imports for out-of-scope operations (§VIII-A).

// A64Backends bundles the baseline backends for AArch64.
type A64Backends struct {
	Handwritten *Backend
	DAG         *Backend
	Naive       *Backend
}

// condFor maps (predicate) to the AArch64 condition suffix.
var a64Cond = map[gmir.Pred]string{
	gmir.PredEQ: "eq", gmir.PredNE: "ne",
	gmir.PredULT: "lo", gmir.PredULE: "ls", gmir.PredUGT: "hi", gmir.PredUGE: "hs",
	gmir.PredSLT: "lt", gmir.PredSLE: "le", gmir.PredSGT: "gt", gmir.PredSGE: "ge",
}

// a64MatConstSmart materializes constants the way a mature backend does:
// minimal MOVZ/MOVK chains, preferring MOVN when the value is mostly
// ones (§VIII-C: "LLVM's sophisticated constant materialization").
func a64MatConstSmart(c *Ctx, v bv.BV) (mir.Reg, bool) {
	w := v.W()
	if w > 64 {
		return 0, false
	}
	if w < 32 {
		v = v.ZExt(32)
		w = 32
	}
	val := v.Lo
	suffix := "X"
	if w == 32 {
		suffix = "W"
	}
	nChunks := w / 16
	zeroChunks, onesChunks := 0, 0
	for i := 0; i < nChunks; i++ {
		chunk := val >> (16 * i) & 0xffff
		if chunk == 0 {
			zeroChunks++
		}
		if chunk == 0xffff {
			onesChunks++
		}
	}
	dst := c.NewReg()
	if onesChunks > zeroChunks {
		// MOVN path: start from all-ones.
		first := true
		for i := 0; i < nChunks; i++ {
			chunk := val >> (16 * i) & 0xffff
			if first {
				if chunk == 0xffff {
					continue
				}
				c.Emit(&mir.Inst{Meta: c.Inst(fmt.Sprintf("MOVN%s_%d", suffix, 16*i)),
					Dsts: []mir.Reg{dst}, Args: []mir.Operand{mir.I(bv.New(16, ^chunk&0xffff))}})
				first = false
				continue
			}
			if chunk == 0xffff {
				continue
			}
			c.Emit(&mir.Inst{Meta: c.Inst(fmt.Sprintf("MOVK%s_%d", suffix, 16*i)),
				Dsts: []mir.Reg{dst}, Args: []mir.Operand{mir.R(dst), mir.I(bv.New(16, chunk))}})
		}
		if first { // all ones
			c.Emit(&mir.Inst{Meta: c.Inst(fmt.Sprintf("MOVN%s_0", suffix)),
				Dsts: []mir.Reg{dst}, Args: []mir.Operand{mir.I(bv.Zero(16))}})
		}
		return dst, true
	}
	// MOVZ path: place the first nonzero chunk with MOVZ, patch the rest.
	first := true
	for i := 0; i < nChunks; i++ {
		chunk := val >> (16 * i) & 0xffff
		if chunk == 0 && !(first && i == nChunks-1 && val == 0) {
			continue
		}
		if first {
			c.Emit(&mir.Inst{Meta: c.Inst(fmt.Sprintf("MOVZ%s_%d", suffix, 16*i)),
				Dsts: []mir.Reg{dst}, Args: []mir.Operand{mir.I(bv.New(16, chunk))}})
			first = false
			continue
		}
		c.Emit(&mir.Inst{Meta: c.Inst(fmt.Sprintf("MOVK%s_%d", suffix, 16*i)),
			Dsts: []mir.Reg{dst}, Args: []mir.Operand{mir.R(dst), mir.I(bv.New(16, chunk))}})
	}
	if first { // zero
		c.Emit(&mir.Inst{Meta: c.Inst("MOVZ" + suffix + "_0"),
			Dsts: []mir.Reg{dst}, Args: []mir.Operand{mir.I(bv.Zero(16))}})
	}
	return dst, true
}

// a64MatConstNaive emits one MOVZ plus a MOVK for every further chunk —
// the simple chunking the paper's synthesized backend uses (it emits "a
// 4-instruction sequence for a 64-bit constant that could be encoded
// with a single instruction when only the upper 16 bits are set").
func a64MatConstNaive(c *Ctx, v bv.BV) (mir.Reg, bool) {
	w := v.W()
	if w > 64 {
		return 0, false
	}
	if w < 32 {
		v = v.ZExt(32)
		w = 32
	}
	val := v.Lo
	suffix := "X"
	if w == 32 {
		suffix = "W"
	}
	dst := c.NewReg()
	c.Emit(&mir.Inst{Meta: c.Inst("MOVZ" + suffix + "_0"),
		Dsts: []mir.Reg{dst}, Args: []mir.Operand{mir.I(bv.New(16, val&0xffff))}})
	for i := 1; i < w/16; i++ {
		chunk := val >> (16 * i) & 0xffff
		if chunk == 0 {
			continue
		}
		c.Emit(&mir.Inst{Meta: c.Inst(fmt.Sprintf("MOVK%s_%d", suffix, 16*i)),
			Dsts: []mir.Reg{dst}, Args: []mir.Operand{mir.R(dst), mir.I(bv.New(16, chunk))}})
	}
	return dst, true
}

// a64LowerBrCond lowers G_BRCOND, folding a single-use feeding icmp into
// compare+branch (or CBZ/CBNZ when comparing against zero).
func a64LowerBrCond(fold bool) func(c *Ctx, cond gmir.Value, taken int, invert bool) bool {
	return func(c *Ctx, cond gmir.Value, taken int, invert bool) bool {
		dummy19 := mir.I(bv.Zero(19))
		if fold {
			if d := c.DefOf(cond); d != nil && d.Op == gmir.GICmp && c.SingleUse(cond) && !c.Covered(d) {
				pred := d.Pred
				if invert {
					pred = gmir.InvertPred(pred)
				}
				w := c.TypeOf(d.Args[0]).Bits
				if w == 32 || w == 64 {
					suffix := "X"
					if w == 32 {
						suffix = "W"
					}
					// Compare-and-branch against zero.
					if cv, ok := c.ConstOf(d.Args[1]); ok && cv.IsZero() &&
						(pred == gmir.PredEQ || pred == gmir.PredNE) {
						name := "CBZ" + suffix
						if pred == gmir.PredNE {
							name = "CBNZ" + suffix
						}
						c.MarkCovered(d)
						c.Emit(&mir.Inst{Meta: c.Inst(name),
							Args:  []mir.Operand{mir.R(c.ValueReg(d.Args[0])), dummy19},
							Succs: []int{taken}})
						return true
					}
					// SUBS + B.cond (immediate form when it fits).
					rn := c.ValueReg(d.Args[0])
					emitted := false
					if cv, ok := c.ConstOf(d.Args[1]); ok {
						if imm, fits := (rules.Embed{Width: 12}).Decode(cv); fits {
							tmp := c.NewReg()
							c.Emit(&mir.Inst{Meta: c.Inst("SUBS" + suffix + "ri"),
								Dsts: []mir.Reg{tmp},
								Args: []mir.Operand{mir.R(rn), mir.I(imm)}})
							emitted = true
						}
					}
					if !emitted {
						tmp := c.NewReg()
						c.Emit(&mir.Inst{Meta: c.Inst("SUBS" + suffix + "rr"),
							Dsts: []mir.Reg{tmp},
							Args: []mir.Operand{mir.R(rn), mir.R(c.ValueReg(d.Args[1]))}})
					}
					c.MarkCovered(d)
					c.Emit(&mir.Inst{Meta: c.Inst("Bcond_" + a64Cond[pred]),
						Args: []mir.Operand{dummy19}, Succs: []int{taken}})
					return true
				}
			}
		}
		// Generic: branch on the boolean register's value.
		name := "CBNZW"
		if invert {
			name = "CBZW"
		}
		r := c.ValueReg(cond)
		c.Emit(&mir.Inst{Meta: c.Inst(name),
			Args:  []mir.Operand{mir.R(r), dummy19},
			Succs: []int{taken}})
		return true
	}
}

// a64LowerInst handles G_SELECT whose condition is a shared (multi-use)
// boolean register — compare the 0/1 register against zero, then CSEL,
// the C++ path LLVM uses when the comparison cannot be folded — and the
// sub-word extensions and truncations the legalizer emits around widened
// narrow arithmetic. Narrow (s8/s16) values follow the usual 64-bit
// register-file convention: bits above the type width are undefined and
// every consumer masks, so truncation is a plain register copy and the
// extensions are UXTB/UXTH/SXTB/SXTH forms.
func a64LowerInst(c *Ctx, in *gmir.Inst) bool {
	switch in.Op {
	case gmir.GZExt:
		from := c.TypeOf(in.Args[0]).Bits
		src := c.ValueReg(in.Args[0])
		dst := c.ensureReg(in.Dst)
		switch from {
		case 1:
			// Booleans are materialized by CSET and always hold 0/1.
			c.Emit(&mir.Inst{Pseudo: mir.PCopy, Dsts: []mir.Reg{dst},
				Args: []mir.Operand{mir.R(src)}})
		case 8:
			c.Emit(&mir.Inst{Meta: c.Inst("UXTBW"), Dsts: []mir.Reg{dst},
				Args: []mir.Operand{mir.R(src)}})
		case 16:
			c.Emit(&mir.Inst{Meta: c.Inst("UXTHW"), Dsts: []mir.Reg{dst},
				Args: []mir.Operand{mir.R(src)}})
		default:
			return false // s32 sources are covered by the UXTWX rule
		}
		return true
	case gmir.GSExt:
		from := c.TypeOf(in.Args[0]).Bits
		if from != 8 && from != 16 {
			return false
		}
		name := "SXTB"
		if from == 16 {
			name = "SXTH"
		}
		// The W form sign-extends to 32 bits, which is bit-exact for any
		// narrower destination too; only s64 needs the X form.
		suffix := "W"
		if in.Ty.Bits == 64 {
			suffix = "X"
		}
		c.Emit(&mir.Inst{Meta: c.Inst(name + suffix), Dsts: []mir.Reg{c.ensureReg(in.Dst)},
			Args: []mir.Operand{mir.R(c.ValueReg(in.Args[0]))}})
		return true
	case gmir.GTrunc:
		if in.Ty.Bits >= 32 {
			return false // s64 -> s32 is covered by the TRUNCWX rule
		}
		c.Emit(&mir.Inst{Pseudo: mir.PCopy, Dsts: []mir.Reg{c.ensureReg(in.Dst)},
			Args: []mir.Operand{mir.R(c.ValueReg(in.Args[0]))}})
		return true
	case gmir.GSelect:
		w := in.Ty.Bits
		if w != 32 && w != 64 {
			return false
		}
		cond := c.ValueReg(in.Args[0])
		x := c.ValueReg(in.Args[1])
		y := c.ValueReg(in.Args[2])
		tmp := c.NewReg()
		c.Emit(&mir.Inst{Meta: c.Inst("SUBSWri"), Dsts: []mir.Reg{tmp},
			Args: []mir.Operand{mir.R(cond), mir.I(bv.Zero(12))}})
		c.Emit(&mir.Inst{Meta: c.Inst("CSEL" + wx(w) + "ne"), Dsts: []mir.Reg{c.ensureReg(in.Dst)},
			Args: []mir.Operand{mir.R(x), mir.R(y)}})
		return true
	case gmir.GStore:
		// The store instruction truncates its source to the access size,
		// which also discards any junk above a narrow value's type width.
		var name string
		switch in.MemBits {
		case 8:
			name = "STRBBui"
		case 16:
			name = "STRHHui"
		case 32:
			name = "STRWui"
		case 64:
			name = "STRXui"
		default:
			return false
		}
		c.Emit(&mir.Inst{Meta: c.Inst(name),
			Args: []mir.Operand{mir.R(c.ValueReg(in.Args[0])),
				mir.R(c.ValueReg(in.Args[1])), mir.I(bv.Zero(12))}})
		return true
	case gmir.GCtpop:
		w := in.Ty.Bits
		if w != 32 && w != 64 {
			return false
		}
		a64Ctpop(c, c.ensureReg(in.Dst), c.ValueReg(in.Args[0]), w)
		return true
	case gmir.GCttz:
		w := in.Ty.Bits
		if w != 32 && w != 64 {
			return false
		}
		// cttz(x) = w - clz(~x & (x-1)): the AND isolates the trailing-zero
		// mask, and for x == 0 it is all-ones (clz 0), yielding w as G_CTTZ
		// defines for zero.
		s := wx(w)
		src := c.ValueReg(in.Args[0])
		t1, nx, lo, cl, mw := c.NewReg(), c.NewReg(), c.NewReg(), c.NewReg(), c.NewReg()
		c.Emit(&mir.Inst{Meta: c.Inst("SUB" + s + "ri"), Dsts: []mir.Reg{t1},
			Args: []mir.Operand{mir.R(src), mir.I(bv.New(12, 1))}})
		c.Emit(&mir.Inst{Meta: c.Inst("MVN" + s + "r"), Dsts: []mir.Reg{nx},
			Args: []mir.Operand{mir.R(src)}})
		c.Emit(&mir.Inst{Meta: c.Inst("AND" + s + "rr"), Dsts: []mir.Reg{lo},
			Args: []mir.Operand{mir.R(nx), mir.R(t1)}})
		c.Emit(&mir.Inst{Meta: c.Inst("CLZ" + s), Dsts: []mir.Reg{cl},
			Args: []mir.Operand{mir.R(lo)}})
		c.Emit(&mir.Inst{Meta: c.Inst("MOVZ" + s + "_0"), Dsts: []mir.Reg{mw},
			Args: []mir.Operand{mir.I(bv.New(16, uint64(w)))}})
		c.Emit(&mir.Inst{Meta: c.Inst("SUB" + s + "rr"), Dsts: []mir.Reg{c.ensureReg(in.Dst)},
			Args: []mir.Operand{mir.R(mw), mir.R(cl)}})
		return true
	}
	return false
}

// a64Ctpop emits the classic SWAR population count (pairs, nibbles, byte
// sum via multiply) — what LLVM expands G_CTPOP to without NEON.
func a64Ctpop(c *Ctx, dst, src mir.Reg, w int) {
	s := wx(w)
	shw := 5
	if w == 64 {
		shw = 6
	}
	bin := func(name string, a, b mir.Reg) mir.Reg {
		d := c.NewReg()
		c.Emit(&mir.Inst{Meta: c.Inst(name), Dsts: []mir.Reg{d},
			Args: []mir.Operand{mir.R(a), mir.R(b)}})
		return d
	}
	shr := func(a mir.Reg, sh int) mir.Reg {
		d := c.NewReg()
		c.Emit(&mir.Inst{Meta: c.Inst("LSR" + s + "ri"), Dsts: []mir.Reg{d},
			Args: []mir.Operand{mir.R(a), mir.I(bv.New(shw, uint64(sh)))}})
		return d
	}
	mask := func(rep uint64) mir.Reg {
		v := uint64(0)
		for i := 0; i < w; i += 8 {
			v |= rep << i
		}
		r, _ := a64MatConstNaive(c, bv.New(w, v))
		return r
	}
	m55, m33, m0f, m01 := mask(0x55), mask(0x33), mask(0x0f), mask(0x01)
	x1 := bin("SUB"+s+"rr", src, bin("AND"+s+"rr", shr(src, 1), m55))
	x2 := bin("ADD"+s+"rr", bin("AND"+s+"rr", x1, m33), bin("AND"+s+"rr", shr(x1, 2), m33))
	x3 := bin("AND"+s+"rr", bin("ADD"+s+"rr", x2, shr(x2, 4)), m0f)
	mul := bin("MUL"+s, x3, m01)
	c.Emit(&mir.Inst{Meta: c.Inst("LSR" + s + "ri"), Dsts: []mir.Reg{dst},
		Args: []mir.Operand{mir.R(mul), mir.I(bv.New(shw, uint64(w-8)))}})
}

// typeLetter maps a width to the W/X suffix.
func wx(bits int) string {
	if bits == 32 {
		return "W"
	}
	return "X"
}

// buildA64Handwritten constructs the handwritten rule library. extra adds
// the SelectionDAG-analog folds.
func buildA64Handwritten(b *term.Builder, tgt *isa.Target, extra bool) *rules.Library {
	lib := rules.NewLibrary("aarch64")
	add := func(p *pattern.Pattern, seqSpec, opSpec string, leafConsts ...string) {
		lib.Add(MustRule(b, tgt, p, seqSpec, opSpec, leafConsts...))
	}
	r := func(bits int) *pattern.Node { return pattern.Leaf(gmir.Type{Bits: bits}) }
	i := func(bits int) *pattern.Node { return pattern.ImmLeaf(gmir.Type{Bits: bits}) }
	op := func(o gmir.Opcode, bits int, args ...*pattern.Node) *pattern.Node {
		return pattern.Op(o, gmir.Type{Bits: bits}, args...)
	}

	for _, w := range []int{32, 64} {
		s := wx(w)
		shW := 5
		if w == 64 {
			shW = 6
		}
		sh := fmt.Sprintf("zext%d", shW)
		// Basic binary operations.
		add(pattern.New(op(gmir.GAdd, w, r(w), r(w))), "ADD"+s+"rr", "p0 p1")
		if w == 64 {
			add(pattern.New(op(gmir.GPtrAdd, w, r(w), r(w))), "ADDXrr", "p0 p1")
			add(pattern.New(op(gmir.GPtrAdd, w, r(w), i(w))), "ADDXri", "p0 p1:zext12")
			add(pattern.New(op(gmir.GPtrAdd, w, r(w), op(gmir.GShl, w, r(w), i(w)))),
				"ADDXrs_lsl", "p0 p1 p2:zext6")
		}
		add(pattern.New(op(gmir.GAdd, w, r(w), i(w))), "ADD"+s+"ri", "p0 p1:zext12")
		add(pattern.New(op(gmir.GAdd, w, r(w), i(w))), "ADD"+s+"ri_s12", "p0 p1:zext12<<12")
		add(pattern.New(op(gmir.GSub, w, r(w), r(w))), "SUB"+s+"rr", "p0 p1")
		add(pattern.New(op(gmir.GSub, w, r(w), i(w))), "SUB"+s+"ri", "p0 p1:zext12")
		add(pattern.New(op(gmir.GMul, w, r(w), r(w))), "MUL"+s, "p0 p1")
		add(pattern.New(op(gmir.GUDiv, w, r(w), r(w))), "UDIV"+s, "p0 p1")
		add(pattern.New(op(gmir.GSDiv, w, r(w), r(w))), "SDIV"+s, "p0 p1")
		add(pattern.New(op(gmir.GAnd, w, r(w), r(w))), "AND"+s+"rr", "p0 p1")
		add(pattern.New(op(gmir.GOr, w, r(w), r(w))), "ORR"+s+"rr", "p0 p1")
		add(pattern.New(op(gmir.GXor, w, r(w), r(w))), "EOR"+s+"rr", "p0 p1")
		// Shifts: gMIR modulo semantics match the LSLV family.
		add(pattern.New(op(gmir.GShl, w, r(w), r(w))), "LSLV"+s, "p0 p1")
		add(pattern.New(op(gmir.GLShr, w, r(w), r(w))), "LSRV"+s, "p0 p1")
		add(pattern.New(op(gmir.GAShr, w, r(w), r(w))), "ASRV"+s, "p0 p1")
		add(pattern.New(op(gmir.GShl, w, r(w), i(w))), "LSL"+s+"ri", "p0 p1:"+sh)
		add(pattern.New(op(gmir.GLShr, w, r(w), i(w))), "LSR"+s+"ri", "p0 p1:"+sh)
		add(pattern.New(op(gmir.GAShr, w, r(w), i(w))), "ASR"+s+"ri", "p0 p1:"+sh)
		// Bit ops.
		add(pattern.New(op(gmir.GCtlz, w, r(w))), "CLZ"+s, "p0")
		add(pattern.New(op(gmir.GBSwap, w, r(w))), "REV"+s, "p0")
		// not / neg via xor -1 and sub-from-zero shapes.
		add(pattern.New(op(gmir.GXor, w, r(w), i(w))), "MVN"+s+"r", "p0", "1=-1")
		// Logical immediates (bitmask encodings, §V-D1 auxiliary form).
		add(pattern.New(op(gmir.GAnd, w, r(w), i(w))), "AND"+s+"ri", fmt.Sprintf("p0 p1:zext%d", w))
		add(pattern.New(op(gmir.GOr, w, r(w), i(w))), "ORR"+s+"ri", fmt.Sprintf("p0 p1:zext%d", w))
		add(pattern.New(op(gmir.GXor, w, r(w), i(w))), "EOR"+s+"ri", fmt.Sprintf("p0 p1:zext%d", w))
		// Multiply-add with a small constant factor (materialize+MADD).
		add(pattern.New(op(gmir.GAdd, w, r(w), op(gmir.GMul, w, r(w), i(w)))),
			fmt.Sprintf("MOVZ%s_0 ; MADD%s[rn]", s, s), "p2:zext16 p1 p0")
		// madd/msub fusions.
		add(pattern.New(op(gmir.GAdd, w, r(w), op(gmir.GMul, w, r(w), r(w)))),
			"MADD"+s, "p1 p2 p0")
		add(pattern.New(op(gmir.GSub, w, r(w), op(gmir.GMul, w, r(w), r(w)))),
			"MSUB"+s, "p1 p2 p0")
		// Shifted-operand folds.
		add(pattern.New(op(gmir.GAdd, w, r(w), op(gmir.GShl, w, r(w), i(w)))),
			"ADD"+s+"rs_lsl", "p0 p1 p2:"+sh)
		add(pattern.New(op(gmir.GSub, w, r(w), op(gmir.GShl, w, r(w), i(w)))),
			"SUB"+s+"rs_lsl", "p0 p1 p2:"+sh)
		// Compare chains: zext(icmp) and select(icmp).
		for pred, cc := range a64Cond {
			cmp := &pattern.Node{Op: gmir.GICmp, Ty: gmir.S1, Pred: pred,
				Args: []*pattern.Node{r(w), r(w)}}
			cmpImm := &pattern.Node{Op: gmir.GICmp, Ty: gmir.S1, Pred: pred,
				Args: []*pattern.Node{r(w), i(w)}}
			for _, zw := range []int{32, 64} {
				zs := wx(zw)
				add(pattern.New(op(gmir.GZExt, zw, cmp)),
					fmt.Sprintf("SUBS%srr ; CSET%s%s[flags]", s, zs, cc), "p0 p1")
				add(pattern.New(op(gmir.GZExt, zw, cmpImm)),
					fmt.Sprintf("SUBS%sri ; CSET%s%s[flags]", s, zs, cc), "p0 p1:zext12")
			}
			add(pattern.New(op(gmir.GSelect, w, cmp, r(w), r(w))),
				fmt.Sprintf("SUBS%srr ; CSEL%s%s[flags]", s, s, cc), "p0 p1 p2 p3")
			add(pattern.New(op(gmir.GSelect, w, cmpImm, r(w), r(w))),
				fmt.Sprintf("SUBS%sri ; CSEL%s%s[flags]", s, s, cc), "p0 p1:zext12 p2 p3")
		}
		// min/max.
		add(pattern.New(op(gmir.GSMin, w, r(w), r(w))),
			fmt.Sprintf("SUBS%srr ; CSEL%slt[flags]", s, s), "p0 p1 p0 p1")
		add(pattern.New(op(gmir.GSMax, w, r(w), r(w))),
			fmt.Sprintf("SUBS%srr ; CSEL%sgt[flags]", s, s), "p0 p1 p0 p1")
		add(pattern.New(op(gmir.GUMin, w, r(w), r(w))),
			fmt.Sprintf("SUBS%srr ; CSEL%slo[flags]", s, s), "p0 p1 p0 p1")
		add(pattern.New(op(gmir.GUMax, w, r(w), r(w))),
			fmt.Sprintf("SUBS%srr ; CSEL%shi[flags]", s, s), "p0 p1 p0 p1")
		// abs.
		add(pattern.New(op(gmir.GAbs, w, r(w))),
			fmt.Sprintf("SUBS%sri ; CSNEG%sge[flags]", s, s), "p0 =0 p0 p0")
	}

	// Extensions and truncation.
	add(pattern.New(op(gmir.GZExt, 64, r(32))), "UXTWX", "p0")
	add(pattern.New(op(gmir.GSExt, 64, r(32))), "SXTWX", "p0")
	add(pattern.New(op(gmir.GTrunc, 32, r(64))), "TRUNCWX", "p0")

	// Loads: scaled-unsigned-immediate, unscaled, register, plain.
	type ldDef struct {
		op      gmir.Opcode
		ty, mem int
		ui, ur  string
		scale   int
	}
	lds := []ldDef{
		{gmir.GLoad, 64, 64, "LDRXui", "LDURXi", 3},
		{gmir.GLoad, 64, 32, "LDRWXui", "LDURWXi", 2},
		{gmir.GLoad, 64, 16, "LDRHHXui", "LDURHHXi", 1},
		{gmir.GLoad, 64, 8, "LDRBBXui", "LDURBBXi", 0},
		{gmir.GLoad, 32, 32, "LDRWui", "LDURWi", 2},
		{gmir.GLoad, 32, 16, "LDRHHui", "LDURHHi", 1},
		{gmir.GLoad, 32, 8, "LDRBBui", "LDURBBi", 0},
		{gmir.GSLoad, 32, 16, "LDRSHWui", "LDURSHWi", 1},
		{gmir.GSLoad, 32, 8, "LDRSBWui", "LDURSBWi", 0},
		{gmir.GSLoad, 64, 32, "LDRSWui", "LDURSWi", 2},
		{gmir.GSLoad, 64, 16, "LDRSHXui", "LDURSHXi", 1},
		{gmir.GSLoad, 64, 8, "LDRSBXui", "LDURSBXi", 0},
	}
	for _, l := range lds {
		base := pattern.New(pattern.LoadOp(l.op, gmir.Type{Bits: l.ty}, l.mem, r(64)))
		add(base, l.ui, "p0 =0")
		folded := pattern.New(pattern.LoadOp(l.op, gmir.Type{Bits: l.ty}, l.mem,
			op(gmir.GPtrAdd, 64, r(64), i(64))))
		add(folded, l.ui, fmt.Sprintf("p0 p1:zext12<<%d", l.scale))
		add(folded, l.ur, "p0 p1:sext9")
	}
	// Register-offset loads.
	add(pattern.New(pattern.LoadOp(gmir.GLoad, gmir.S64, 64,
		op(gmir.GPtrAdd, 64, r(64), r(64)))), "LDRXroX", "p0 p1")
	add(pattern.New(pattern.LoadOp(gmir.GLoad, gmir.S32, 32,
		op(gmir.GPtrAdd, 64, r(64), r(64)))), "LDRWroX", "p0 p1")

	// Stores.
	type stDef struct {
		ty, mem int
		ui, ur  string
		scale   int
	}
	sts := []stDef{
		{64, 64, "STRXui", "STURXi", 3},
		{64, 32, "STRWXui", "STURWXi", 2},
		{64, 16, "STRHHXui", "STURHHXi", 1},
		{64, 8, "STRBBXui", "STURBBXi", 0},
		{32, 32, "STRWui", "STURWi", 2},
		{32, 16, "STRHHui", "STURHHi", 1},
		{32, 8, "STRBBui", "STURBBi", 0},
	}
	for _, st := range sts {
		base := pattern.New(pattern.StoreOp(st.mem, r(st.ty), r(64)))
		add(base, st.ui, "p0 p1 =0")
		folded := pattern.New(pattern.StoreOp(st.mem, r(st.ty),
			op(gmir.GPtrAdd, 64, r(64), i(64))))
		add(folded, st.ui, fmt.Sprintf("p0 p1 p2:zext12<<%d", st.scale))
		add(folded, st.ur, "p0 p1 p2:sext9")
	}
	add(pattern.New(pattern.StoreOp(64, r(64),
		op(gmir.GPtrAdd, 64, r(64), r(64)))), "STRXroX", "p0 p1 p2")

	// Folds real GlobalISel ships: shifted logical operands, extended
	// adds, widening multiplies, shifted addressing.
	{
		for _, w := range []int{32, 64} {
			s := wx(w)
			shW := 5
			if w == 64 {
				shW = 6
			}
			sh := fmt.Sprintf("zext%d", shW)
			for o, name := range map[gmir.Opcode]string{
				gmir.GAnd: "AND", gmir.GOr: "ORR", gmir.GXor: "EOR",
			} {
				add(pattern.New(op(o, w, r(w), op(gmir.GShl, w, r(w), i(w)))),
					name+s+"rs_lsl", "p0 p1 p2:"+sh)
			}
			// add(x, lshr/ashr-shifted).
			add(pattern.New(op(gmir.GAdd, w, r(w), op(gmir.GLShr, w, r(w), i(w)))),
				"ADD"+s+"rs_lsr", "p0 p1 p2:"+sh)
			add(pattern.New(op(gmir.GAdd, w, r(w), op(gmir.GAShr, w, r(w), i(w)))),
				"ADD"+s+"rs_asr", "p0 p1 p2:"+sh)
		}
		// Extended-register adds.
		add(pattern.New(op(gmir.GAdd, 64, r(64), op(gmir.GZExt, 64, r(32)))),
			"ADDXrx_uxtw", "p0 p1")
		add(pattern.New(op(gmir.GAdd, 64, r(64), op(gmir.GSExt, 64, r(32)))),
			"ADDXrx_sxtw", "p0 p1")
		// Widening multiplies.
		add(pattern.New(op(gmir.GMul, 64, op(gmir.GZExt, 64, r(32)), op(gmir.GZExt, 64, r(32)))),
			"UMULL", "p0 p1")
		add(pattern.New(op(gmir.GMul, 64, op(gmir.GSExt, 64, r(32)), op(gmir.GSExt, 64, r(32)))),
			"SMULL", "p0 p1")
		// Shifted register-offset loads/stores.
		add(pattern.New(pattern.LoadOp(gmir.GLoad, gmir.S64, 64,
			op(gmir.GPtrAdd, 64, r(64), op(gmir.GShl, 64, r(64), i(64))))),
			"LDRXroX_s3", "p0 p1", "2=3")
		add(pattern.New(pattern.StoreOp(64, r(64),
			op(gmir.GPtrAdd, 64, r(64), op(gmir.GShl, 64, r(64), i(64))))),
			"STRXroX_s3", "p0 p1 p2", "3=3")
		// Negation and the inverted/negated logical forms.
		for _, w := range []int{32, 64} {
			s := wx(w)
			add(pattern.New(op(gmir.GSub, w, i(w), r(w))), "NEG"+s+"r", "p1", "0=0")
			add(pattern.New(op(gmir.GAnd, w, r(w), op(gmir.GXor, w, r(w), i(w)))),
				"BIC"+s+"rr", "p0 p1", "2=-1")
			add(pattern.New(op(gmir.GOr, w, r(w), op(gmir.GXor, w, r(w), i(w)))),
				"ORN"+s+"rr", "p0 p1", "2=-1")
			add(pattern.New(op(gmir.GXor, w, r(w), op(gmir.GXor, w, r(w), i(w)))),
				"EON"+s+"rr", "p0 p1", "2=-1")
		}
	}

	if extra {
		// SelectionDAG-analog additions: conditional-increment fusion
		// (x + zext(cmp) = CSINC) and comparisons feeding selects with
		// immediates — the kind of long-tail peepholes only the most
		// mature backend accumulates.
		for _, w := range []int{32, 64} {
			s := wx(w)
			for pred, cc := range a64Cond {
				inv := a64Cond[gmir.InvertPred(pred)]
				cmp := &pattern.Node{Op: gmir.GICmp, Ty: gmir.S1, Pred: pred,
					Args: []*pattern.Node{r(w), r(w)}}
				zext := op(gmir.GZExt, w, cmp)
				add(pattern.New(op(gmir.GAdd, w, r(w), zext)),
					fmt.Sprintf("SUBS%srr ; CSINC%s%s[flags]", s, s, inv), "p1 p2 p0 p0")
				_ = cc
			}
		}
	}
	return lib
}

// buildA64Naive builds the FastISel analog: one rule per operation, no
// folds, no immediate forms.
func buildA64Naive(b *term.Builder, tgt *isa.Target) *rules.Library {
	lib := rules.NewLibrary("aarch64-naive")
	add := func(p *pattern.Pattern, seqSpec, opSpec string) {
		lib.Add(MustRule(b, tgt, p, seqSpec, opSpec))
	}
	r := func(bits int) *pattern.Node { return pattern.Leaf(gmir.Type{Bits: bits}) }
	op := func(o gmir.Opcode, bits int, args ...*pattern.Node) *pattern.Node {
		return pattern.Op(o, gmir.Type{Bits: bits}, args...)
	}
	for _, w := range []int{32, 64} {
		s := wx(w)
		add(pattern.New(op(gmir.GAdd, w, r(w), r(w))), "ADD"+s+"rr", "p0 p1")
		if w == 64 {
			add(pattern.New(op(gmir.GPtrAdd, w, r(w), r(w))), "ADDXrr", "p0 p1")
		}
		add(pattern.New(op(gmir.GSub, w, r(w), r(w))), "SUB"+s+"rr", "p0 p1")
		add(pattern.New(op(gmir.GMul, w, r(w), r(w))), "MUL"+s, "p0 p1")
		add(pattern.New(op(gmir.GUDiv, w, r(w), r(w))), "UDIV"+s, "p0 p1")
		add(pattern.New(op(gmir.GSDiv, w, r(w), r(w))), "SDIV"+s, "p0 p1")
		add(pattern.New(op(gmir.GAnd, w, r(w), r(w))), "AND"+s+"rr", "p0 p1")
		add(pattern.New(op(gmir.GOr, w, r(w), r(w))), "ORR"+s+"rr", "p0 p1")
		add(pattern.New(op(gmir.GXor, w, r(w), r(w))), "EOR"+s+"rr", "p0 p1")
		add(pattern.New(op(gmir.GShl, w, r(w), r(w))), "LSLV"+s, "p0 p1")
		add(pattern.New(op(gmir.GLShr, w, r(w), r(w))), "LSRV"+s, "p0 p1")
		add(pattern.New(op(gmir.GAShr, w, r(w), r(w))), "ASRV"+s, "p0 p1")
		add(pattern.New(op(gmir.GCtlz, w, r(w))), "CLZ"+s, "p0")
		add(pattern.New(op(gmir.GBSwap, w, r(w))), "REV"+s, "p0")
		for pred, cc := range a64Cond {
			cmp := &pattern.Node{Op: gmir.GICmp, Ty: gmir.S1, Pred: pred,
				Args: []*pattern.Node{r(w), r(w)}}
			for _, zw := range []int{32, 64} {
				add(pattern.New(op(gmir.GZExt, zw, cmp)),
					fmt.Sprintf("SUBS%srr ; CSET%s%s[flags]", s, wx(zw), cc), "p0 p1")
			}
			add(pattern.New(op(gmir.GSelect, w, cmp, r(w), r(w))),
				fmt.Sprintf("SUBS%srr ; CSEL%s%s[flags]", s, s, cc), "p0 p1 p2 p3")
		}
		add(pattern.New(op(gmir.GSMin, w, r(w), r(w))),
			fmt.Sprintf("SUBS%srr ; CSEL%slt[flags]", s, s), "p0 p1 p0 p1")
		add(pattern.New(op(gmir.GSMax, w, r(w), r(w))),
			fmt.Sprintf("SUBS%srr ; CSEL%sgt[flags]", s, s), "p0 p1 p0 p1")
		add(pattern.New(op(gmir.GUMin, w, r(w), r(w))),
			fmt.Sprintf("SUBS%srr ; CSEL%slo[flags]", s, s), "p0 p1 p0 p1")
		add(pattern.New(op(gmir.GUMax, w, r(w), r(w))),
			fmt.Sprintf("SUBS%srr ; CSEL%shi[flags]", s, s), "p0 p1 p0 p1")
		add(pattern.New(op(gmir.GAbs, w, r(w))),
			fmt.Sprintf("SUBS%sri ; CSNEG%sge[flags]", s, s), "p0 =0 p0 p0")
	}
	add(pattern.New(op(gmir.GZExt, 64, r(32))), "UXTWX", "p0")
	add(pattern.New(op(gmir.GSExt, 64, r(32))), "SXTWX", "p0")
	add(pattern.New(op(gmir.GTrunc, 32, r(64))), "TRUNCWX", "p0")
	// Plain loads/stores only.
	for _, l := range []struct {
		op      gmir.Opcode
		ty, mem int
		name    string
	}{
		{gmir.GLoad, 64, 64, "LDRXui"},
		{gmir.GLoad, 64, 32, "LDRWXui"}, {gmir.GLoad, 64, 16, "LDRHHXui"},
		{gmir.GLoad, 64, 8, "LDRBBXui"},
		{gmir.GLoad, 32, 32, "LDRWui"},
		{gmir.GLoad, 32, 16, "LDRHHui"}, {gmir.GLoad, 32, 8, "LDRBBui"},
		{gmir.GSLoad, 32, 16, "LDRSHWui"}, {gmir.GSLoad, 32, 8, "LDRSBWui"},
		{gmir.GSLoad, 64, 32, "LDRSWui"}, {gmir.GSLoad, 64, 16, "LDRSHXui"},
		{gmir.GSLoad, 64, 8, "LDRSBXui"},
	} {
		add(pattern.New(pattern.LoadOp(l.op, gmir.Type{Bits: l.ty}, l.mem, r(64))),
			l.name, "p0 =0")
	}
	for _, st := range []struct {
		ty, mem int
		name    string
	}{
		{64, 64, "STRXui"}, {64, 32, "STRWXui"}, {64, 16, "STRHHXui"},
		{64, 8, "STRBBXui"},
		{32, 32, "STRWui"}, {32, 16, "STRHHui"}, {32, 8, "STRBBui"},
	} {
		add(pattern.New(pattern.StoreOp(st.mem, r(st.ty), r(64))), st.name, "p0 p1 =0")
	}
	return lib
}

// NewA64Backends builds the three baseline backends over a loaded
// AArch64 target.
func NewA64Backends(b *term.Builder, tgt *isa.Target) *A64Backends {
	hand := buildA64Handwritten(b, tgt, false)
	dag := buildA64Handwritten(b, tgt, true)
	naive := buildA64Naive(b, tgt)
	return &A64Backends{
		Handwritten: &Backend{Name: "globalisel", ISA: tgt, Lib: hand, Hooks: Hooks{
			MatConst:    a64MatConstSmart,
			LowerBrCond: a64LowerBrCond(true),
			LowerInst:   a64LowerInst,
		}},
		DAG: &Backend{Name: "selectiondag", ISA: tgt, Lib: dag, Hooks: Hooks{
			MatConst:    a64MatConstSmart,
			LowerBrCond: a64LowerBrCond(true),
			LowerInst:   a64LowerInst,
		}},
		Naive: &Backend{Name: "fastisel", ISA: tgt, Lib: naive, Hooks: Hooks{
			MatConst:    a64MatConstNaive,
			LowerBrCond: a64LowerBrCond(false),
			LowerInst:   a64LowerInst,
		}},
	}
}

// NewA64Synth wraps a synthesized rule library into a backend with the
// manual hook imports (§VIII-A): branch lowering and (naive) constant
// materialization.
func NewA64Synth(tgt *isa.Target, lib *rules.Library) *Backend {
	return &Backend{Name: "synth", ISA: tgt, Lib: lib, Hooks: Hooks{
		MatConst:    a64MatConstNaive,
		LowerBrCond: a64LowerBrCond(true),
		LowerInst:   a64LowerInst,
	}}
}
