// Optimal (BURS-style) instruction selection: a bottom-up dynamic
// program over the gMIR def-use forest that picks, per candidate root,
// the rule minimizing total model cost — rule cost plus the cost of
// computing every register leaf the pattern leaves uncovered. This is
// the classic optimal tree-tiling contrast to the greedy
// largest-pattern-first matcher in select.go (paper §II-B): greedy can
// lose when a big pattern's leaves are expensive to produce while two
// small tiles share cheaper frontiers.
//
// The planner reuses the greedy machinery wholesale — same pattern
// matcher, same rule chains, same hooks — so the two selectors differ
// only in which rule each root commits to. Emission with a plan runs
// the normal reverse-order pass; tryRules consults the plan before the
// largest-first chain, and anything the plan does not cover (bool
// roots, hook lowerings) behaves exactly as in the greedy selector.
package isel

import (
	"iselgen/internal/cost"
	"iselgen/internal/gmir"
	"iselgen/internal/mir"
	"iselgen/internal/rules"
)

// SelectorKind picks the selection engine a Backend runs.
type SelectorKind int

const (
	// SelGreedy is the largest-pattern-first matcher (GlobalISel analog).
	SelGreedy SelectorKind = iota
	// SelOptimal is the bottom-up DP tiler. It never does worse than
	// greedy under the backend's cost model: Select runs both emissions
	// and keeps the statically cheaper one.
	SelOptimal
)

func (k SelectorKind) String() string {
	if k == SelOptimal {
		return "optimal"
	}
	return "greedy"
}

// planChoice is the DP decision at one candidate root.
type planChoice struct {
	rule *rules.Rule
	vec  cost.Vector // dp value: rule cost + uncovered frontier cost
}

// OptimalVariant derives an optimal-selector backend from an existing
// one, sharing its library and hooks. A nil model defaults to the
// target-derived table, so static cost mirrors sim cycle accounting.
func OptimalVariant(b *Backend, model *cost.Table) *Backend {
	v := *b
	v.Selector = SelOptimal
	if model == nil {
		model = cost.FromTarget(b.ISA)
	}
	v.Model = model
	return &v
}

// effModel returns the cost table static comparisons use.
func (b *Backend) effModel() *cost.Table {
	if b.Model != nil {
		return b.Model
	}
	return cost.FromTarget(b.ISA)
}

// selectOptimal runs the DP-planned emission and the greedy emission
// and returns whichever is statically cheaper under the model. The
// comparison is the hard floor behind the "optimal ≤ greedy" claim:
// even where the plan's frontier estimates are off (constant reuse,
// hook lowerings), the result can only improve on greedy.
func (b *Backend) selectOptimal(f *gmir.Function) (*mir.Func, *Report) {
	model := b.effModel()
	gmir.SplitCriticalEdges(f) // idempotent; the plan must see final CFG shape
	plan := b.buildPlan(f, model)
	outP, repP := b.selectWithPlan(f, plan, b.Obs)
	// The greedy pass here exists only as the cost-comparison baseline;
	// it runs with observability silenced so one Select call does not
	// record greedy-engine spans and decisions nobody asked for.
	outG, repG := b.selectWithPlan(f, nil, nil)
	switch {
	case outP == nil && outG == nil:
		repG.Selector = "optimal"
		return nil, repG
	case outP == nil:
		repG.Selector = "optimal"
		return outG, repG
	case outG == nil:
		repP.Selector = "optimal"
		return outP, repP
	}
	if cost.StaticOf(outG, model).Less(cost.StaticOf(outP, model)) {
		repG.Selector = "optimal"
		return outG, repG
	}
	repP.Selector = "optimal"
	return outP, repP
}

// buildPlan computes the bottom-up DP over every block in program
// order (defs precede uses in SSA, so frontier costs are ready when a
// consumer is planned). dp[in] is the model cost of producing in's
// value as a selection root; multi-use and cross-choice-invariant
// values (params, hook-lowered ops, shared constants) contribute zero
// because they are computed once no matter which rule wins.
func (b *Backend) buildPlan(f *gmir.Function, model *cost.Table) map[*gmir.Inst]*planChoice {
	c := &Ctx{
		B: b, F: f,
		Out:    &mir.Func{Name: f.Name + ".plan"},
		def:    map[gmir.Value]*gmir.Inst{},
		uses:   map[gmir.Value]int{},
		vreg:   map[gmir.Value]mir.Reg{},
		cover:  map[*gmir.Inst]bool{},
		pos:    map[*gmir.Inst]instPos{},
		report: &Report{},
	}
	for _, blk := range f.Blocks {
		for idx, in := range blk.Insts {
			c.pos[in] = instPos{blk: blk, idx: idx}
			if in.Dst >= 0 {
				c.def[in.Dst] = in
			}
			for _, a := range in.Args {
				c.uses[a]++
			}
		}
	}
	plan := map[*gmir.Inst]*planChoice{}
	constMemo := map[string]cost.Vector{}
	for _, blk := range f.Blocks {
		for _, in := range blk.Insts {
			if !in.Op.IsSelectable() || in.Op == gmir.GPhi || in.Op == gmir.GConstant ||
				in.Op == gmir.GCopy {
				continue
			}
			c.curRoot = in // loadFoldSafe anchors on the root position
			if pc := c.planFor(in, model, plan, constMemo); pc != nil {
				plan[in] = pc
			}
		}
	}
	return plan
}

// planFor evaluates every candidate rule at root `in` and keeps the
// cheapest total: rule sequence cost plus, for each register leaf of
// the matched pattern, the DP cost of its single-use def (zero for
// params, multi-use values, and immediate-folded constants).
func (c *Ctx) planFor(in *gmir.Inst, model *cost.Table,
	plan map[*gmir.Inst]*planChoice, constMemo map[string]cost.Vector) *planChoice {
	key := rules.RootKey{Op: int(in.Op), Bits: in.Ty.Bits, Pred: int(in.Pred), MemBits: in.MemBits}
	if in.Op == gmir.GStore {
		key.Bits = 0
	}
	var best *planChoice
	for _, r := range c.B.Lib.Candidates(key) {
		bind, okm := c.matchPattern(r, in)
		if okm != matchOK {
			continue
		}
		vec := model.SeqVector(r.Seq)
		for li, leaf := range r.Pattern.Leaves() {
			if !leaf.LeafReg {
				continue // immediate-folded: encoded into the instruction
			}
			vo := bind.leafVals[li]
			if vo.def == nil || !c.SingleUse(vo.val) {
				continue // param or shared value: cost is choice-invariant
			}
			switch {
			case vo.def.Op == gmir.GConstant:
				vec = vec.Add(c.trialConstCost(vo.def, model, constMemo))
			default:
				if d := plan[vo.def]; d != nil {
					vec = vec.Add(d.vec)
				}
			}
		}
		if best == nil || vec.Less(best.vec) {
			best = &planChoice{rule: r, vec: vec}
		}
	}
	return best
}

// trialConstCost runs the MatConst hook against a scratch emission
// buffer to price a single-use constant that a rule keeps in a
// register (instead of folding as an immediate). Memoized per constant
// value; hooks only touch c.cur and the register counter, both
// restored/harmless.
func (c *Ctx) trialConstCost(def *gmir.Inst, model *cost.Table, memo map[string]cost.Vector) cost.Vector {
	k := def.Imm.String()
	if v, ok := memo[k]; ok {
		return v
	}
	var vec cost.Vector
	if c.B.Hooks.MatConst != nil {
		saved := c.cur
		c.cur = nil
		if _, ok := c.B.Hooks.MatConst(c, def.Imm); ok {
			for _, m := range c.cur {
				vec = vec.Add(model.InstVector(m))
			}
		}
		c.cur = saved
	}
	memo[k] = vec
	return vec
}
