package isel

import (
	"fmt"
	"strconv"
	"strings"

	"iselgen/internal/bv"
	"iselgen/internal/isa"
	"iselgen/internal/pattern"
	"iselgen/internal/rules"
	"iselgen/internal/term"
)

// This file implements the compact specification language used to write
// the handwritten baseline rule libraries (the analog of LLVM's manually
// maintained TableGen files) and the manual imports the synthesized
// backend uses for operations outside the synthesis scope (§VI-A,
// §VIII-A). Every manual rule is verified against random inputs at
// construction time — handwritten baselines must be as trustworthy as
// the correct-by-construction synthesized rules they are compared with.

// MustSeq builds an instruction sequence from a spec like
//
//	"SUBSXrr ; CSETXeq[flags]"      — flag-consuming chain
//	"LSLXri ; ADDXrr[rm]"           — result wired into operand rm
//	"UDIVX ; MSUBX[rn]"             — result wired into operand rn
//
// It panics on malformed specs (these are compile-time fixtures).
func MustSeq(b *term.Builder, tgt *isa.Target, specStr string) *isa.Sequence {
	parts := strings.Split(specStr, ";")
	var seq *isa.Sequence
	for i, part := range parts {
		part = strings.TrimSpace(part)
		name := part
		var wires []string
		flags := false
		if k := strings.IndexByte(part, '['); k >= 0 {
			name = part[:k]
			spec := strings.TrimSuffix(part[k+1:], "]")
			for _, tok := range strings.Split(spec, ",") {
				tok = strings.TrimSpace(tok)
				if tok == "flags" {
					flags = true
				} else if tok != "" {
					wires = append(wires, tok)
				}
			}
		}
		inst := tgt.ByName(name)
		if inst == nil {
			panic("isel: unknown instruction " + name + " in " + specStr)
		}
		if i == 0 {
			if len(wires) > 0 || flags {
				panic("isel: first instruction cannot wire: " + specStr)
			}
			seq = isa.Single(b, inst)
			continue
		}
		next, err := isa.Append(b, seq, inst, wires, flags)
		if err != nil {
			panic(fmt.Sprintf("isel: %s: %v", specStr, err))
		}
		seq = next
	}
	return seq
}

// MustRule builds and verifies a manual rule.
//
// opSpec has one token per sequence input, in order:
//
//	p0              — pattern leaf 0, direct
//	p2:zext6        — leaf 2 through a zero-extending width-6 embed
//	p1:sext9        — sign-extending embed
//	p1:zext12<<3    — scaled embed
//	=0 / =0x1f      — fixed constant operand
//
// leafConsts like "3=-1" constrain leaf 3 to an exact constant.
func MustRule(b *term.Builder, tgt *isa.Target, pat *pattern.Pattern,
	seqSpec, opSpec string, leafConsts ...string) *rules.Rule {

	seq := MustSeq(b, tgt, seqSpec)
	toks := strings.Fields(opSpec)
	if len(toks) != len(seq.Inputs) {
		panic(fmt.Sprintf("isel: %s: %d operand tokens for %d inputs",
			seqSpec, len(toks), len(seq.Inputs)))
	}
	r := &rules.Rule{Pattern: pat, Seq: seq, Source: "manual"}
	leaves := pat.Leaves()
	for k, tok := range toks {
		in := seq.Inputs[k]
		switch {
		case strings.HasPrefix(tok, "="):
			v, err := strconv.ParseInt(strings.TrimPrefix(tok, "="), 0, 64)
			if err != nil {
				panic("isel: bad const token " + tok)
			}
			r.Operands = append(r.Operands, rules.OperandSource{
				Kind: rules.SrcConst, Const: bv.NewInt(in.Op.Width, v)})
		case strings.HasPrefix(tok, "p"):
			body := strings.TrimPrefix(tok, "p")
			leafStr, embedStr, hasEmbed := strings.Cut(body, ":")
			leaf, err := strconv.Atoi(leafStr)
			if err != nil || leaf >= len(leaves) {
				panic("isel: bad leaf token " + tok)
			}
			src := rules.OperandSource{Kind: rules.SrcLeaf, Leaf: leaf}
			if hasEmbed {
				src.Embed = parseEmbed(embedStr)
			}
			r.Operands = append(r.Operands, src)
		default:
			panic("isel: bad operand token " + tok)
		}
	}
	for _, lc := range leafConsts {
		idxStr, valStr, ok := strings.Cut(lc, "=")
		if !ok {
			panic("isel: bad leaf const " + lc)
		}
		idx, err1 := strconv.Atoi(idxStr)
		val, err2 := strconv.ParseInt(valStr, 0, 64)
		if err1 != nil || err2 != nil || idx >= len(leaves) {
			panic("isel: bad leaf const " + lc)
		}
		if r.LeafConsts == nil {
			r.LeafConsts = map[int]bv.BV{}
		}
		r.LeafConsts[idx] = bv.NewInt(leaves[idx].Ty.Bits, val)
	}
	if err := VerifyRule(b, r); err != nil {
		panic(fmt.Sprintf("isel: manual rule %s is wrong: %v", seqSpec, err))
	}
	return r
}

func parseEmbed(s string) *rules.Embed {
	em := &rules.Embed{}
	if rest, ok := strings.CutPrefix(s, "zext"); ok {
		s = rest
	} else if rest, ok := strings.CutPrefix(s, "sext"); ok {
		em.Signed = true
		s = rest
	} else {
		panic("isel: bad embed " + s)
	}
	wStr, shStr, hasShift := strings.Cut(s, "<<")
	w, err := strconv.Atoi(wStr)
	if err != nil {
		panic("isel: bad embed width " + s)
	}
	em.Width = w
	if hasShift {
		sh, err := strconv.Atoi(shStr)
		if err != nil {
			panic("isel: bad embed shift " + s)
		}
		em.Shift = sh
	}
	return em
}

// VerifyRule checks a rule by random evaluation: on inputs satisfying the
// rule's constraints, the pattern and the sequence's primary effect must
// agree. Also used by the test suites as invariant #6.
func VerifyRule(b *term.Builder, r *rules.Rule) error {
	tp, err := r.Pattern.Compile(b)
	if err != nil {
		return err
	}
	leaves := r.Pattern.Leaves()
	primary := -1
	for i, e := range r.Seq.Effects {
		if e.Dest == "rd" || e.T.Op == term.Store {
			primary = i
			break
		}
	}
	if primary < 0 {
		return fmt.Errorf("sequence %s has no primary effect", r.Seq)
	}
	rng := bv.NewRNG(0xc0ffee)
	trials := 0
	for attempt := 0; attempt < 400 && trials < 50; attempt++ {
		env := term.NewEnv()
		leafVals := make([]bv.BV, len(leaves))
		for i, l := range leaves {
			leafVals[i] = rng.BV(l.Ty.Bits)
			if v, ok := r.LeafConsts[i]; ok {
				leafVals[i] = v
			}
		}
		ok := true
		for k, in := range r.Seq.Inputs {
			src := r.Operands[k]
			var v bv.BV
			switch src.Kind {
			case rules.SrcConst:
				v = src.Const
			case rules.SrcLeaf:
				v = leafVals[src.Leaf]
				if src.Embed != nil {
					// Force representable values for constrained leaves.
					e, repr := src.Embed.Decode(v)
					if !repr {
						forced := rng.BV(src.Embed.Width)
						var back bv.BV
						if src.Embed.Signed {
							back = forced.SExt(leaves[src.Leaf].Ty.Bits)
						} else {
							back = forced.ZExt(leaves[src.Leaf].Ty.Bits)
						}
						back = back.ShlN(uint(src.Embed.Shift))
						leafVals[src.Leaf] = back
						e, repr = src.Embed.Decode(back)
						if !repr {
							ok = false
							break
						}
						v = back
					}
					v = e
					if v.W() < in.Op.Width {
						v = v.ZExt(in.Op.Width)
					}
				}
			}
			if !ok {
				break
			}
			env.Bind(in.Var.Name, v)
		}
		if !ok {
			continue
		}
		for i, l := range leaves {
			env.Bind(pattern.LeafName(i, l), leafVals[i])
		}
		trials++
		pv := tp.Eval(env)
		sv := r.Seq.Effects[primary].T.Eval(env)
		if pv != sv {
			return fmt.Errorf("mismatch on %v: pattern %v, sequence %v", env.Vals, pv, sv)
		}
	}
	if trials == 0 {
		return fmt.Errorf("no valid trials for rule %s", r.Seq)
	}
	return nil
}
