package isel

import (
	"strings"
	"testing"

	"iselgen/internal/core"
	"iselgen/internal/cost"
	"iselgen/internal/gmir"
	"iselgen/internal/isa"
	"iselgen/internal/isa/aarch64"
	"iselgen/internal/isa/riscv"
	"iselgen/internal/isa/x86"
	"iselgen/internal/pattern"
	"iselgen/internal/rules"
	"iselgen/internal/term"
)

// The disk layer of the service cache depends on Save → Load → Save
// being byte-identical (a re-persisted artifact must not churn) and on
// every reloaded rule passing verification. Exercised for all three
// targets.

func checkRoundTrip(t *testing.T, b *term.Builder, tgt *isa.Target, lib *rules.Library) {
	t.Helper()
	if lib.Len() == 0 {
		t.Fatal("empty library, nothing round-trips")
	}
	text := SaveLibrary(lib)
	loaded, err := LoadLibrary(b, tgt, text)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded.Len() != lib.Len() {
		t.Fatalf("loaded %d rules, saved %d", loaded.Len(), lib.Len())
	}
	again := SaveLibrary(loaded)
	if again != text {
		t.Errorf("re-emit not byte-identical:\n--- first ---\n%s\n--- second ---\n%s", text, again)
	}
	for _, r := range loaded.Rules {
		if err := VerifyRule(b, r); err != nil {
			t.Errorf("reloaded rule %s does not verify: %v", r.Seq, err)
		}
	}
}

func TestRoundTripAArch64(t *testing.T) {
	b := term.NewBuilder()
	tgt, err := aarch64.Load(b)
	if err != nil {
		t.Fatal(err)
	}
	checkRoundTrip(t, b, tgt, buildA64Handwritten(b, tgt, true))
}

func TestRoundTripRISCV(t *testing.T) {
	b := term.NewBuilder()
	tgt, err := riscv.Load(b)
	if err != nil {
		t.Fatal(err)
	}
	checkRoundTrip(t, b, tgt, buildRVHandwritten(b, tgt, true))
}

// TestRoundTripX86 uses a synthesized library (x86 has no handwritten
// one), so SMT-sourced rules with immediate constraints and fixed
// constants go through the round-trip too.
func TestRoundTripX86(t *testing.T) {
	b := term.NewBuilder()
	tgt, err := x86.Load(b)
	if err != nil {
		t.Fatal(err)
	}
	synth := core.New(b, tgt, core.Config{TestInputs: 32, Workers: 2})
	synth.BuildPool()
	r32 := func() *pattern.Node { return pattern.Leaf(gmir.S32) }
	i32 := func() *pattern.Node { return pattern.ImmLeaf(gmir.S32) }
	pats := []*pattern.Pattern{
		pattern.New(pattern.Op(gmir.GAdd, gmir.S32, r32(), r32())),
		pattern.New(pattern.Op(gmir.GAdd, gmir.S32, r32(), i32())),
		pattern.New(pattern.Op(gmir.GSub, gmir.S32, r32(), r32())),
		pattern.New(pattern.Op(gmir.GAnd, gmir.S32, r32(), i32())),
		pattern.New(pattern.Op(gmir.GXor, gmir.S32, r32(), r32())),
		pattern.New(pattern.Op(gmir.GShl, gmir.S32, r32(), i32())),
		pattern.New(pattern.Op(gmir.GAdd, gmir.S32, r32(),
			pattern.Op(gmir.GShl, gmir.S32, r32(), i32()))),
		pattern.New(pattern.Op(gmir.GOr, gmir.S32, r32(),
			pattern.Op(gmir.GXor, gmir.S32, r32(), i32()))),
	}
	lib := rules.NewLibrary("x86")
	synth.Synthesize(pats, lib)
	checkRoundTrip(t, b, tgt, lib)
}

// Cost-annotated libraries (synthesized under a cost table) must
// round-trip byte-identically too: the loader has no Model to restamp
// from, so the persisted "cost:" field is the only carrier.
func TestRoundTripCostAnnotated(t *testing.T) {
	b := term.NewBuilder()
	tgt, err := aarch64.Load(b)
	if err != nil {
		t.Fatal(err)
	}
	plain := buildA64Handwritten(b, tgt, true)
	lib := rules.NewLibrary(tgt.Name)
	lib.Model = cost.FromTarget(tgt)
	for _, r := range plain.Rules {
		cp := *r
		cp.CostV = cost.Vector{} // let Add stamp from the model
		lib.Add(&cp)
	}
	text := SaveLibrary(lib)
	if !strings.Contains(text, "\tcost:") {
		t.Fatal("cost-annotated save carries no cost fields")
	}
	checkRoundTrip(t, b, tgt, lib)
	loaded, err := LoadLibrary(b, tgt, text)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range loaded.Rules {
		if r.CostV.IsZero() {
			t.Fatalf("rule %s lost its cost vector on load", r.Seq)
		}
		if want := lib.Model.SeqVector(r.Seq); r.CostV != want {
			t.Fatalf("rule %s cost %v, model says %v", r.Seq, r.CostV, want)
		}
	}
}

// Legacy cost-less artifacts must keep loading unchanged (missing cost
// field ⇒ legacy operand-count metric, no error, no churn on re-save).
func TestLegacyLinesLoadWithoutCost(t *testing.T) {
	b := term.NewBuilder()
	tgt, err := aarch64.Load(b)
	if err != nil {
		t.Fatal(err)
	}
	lib := buildA64Handwritten(b, tgt, true)
	text := SaveLibrary(lib)
	if strings.Contains(text, "cost:") {
		t.Fatal("model-less library must not emit cost fields")
	}
	loaded, err := LoadLibrary(b, tgt, text)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range loaded.Rules {
		if !r.CostV.IsZero() {
			t.Fatalf("legacy rule %s acquired a cost vector", r.Seq)
		}
	}
	// A malformed cost field is a load error, not a silent fallback.
	var line string
	for _, l := range strings.Split(text, "\n") {
		if l != "" && !strings.HasPrefix(l, "#") {
			line = l
			break
		}
	}
	fields := strings.Split(line, "\t")
	bad := strings.Join(append(fields[:len(fields)-1], "cost:banana", fields[len(fields)-1]), "\t")
	if _, err := LoadRule(b, tgt, bad); err == nil {
		t.Error("malformed cost field loaded without error")
	}
}
