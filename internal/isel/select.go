// Package isel implements instruction selection over gMIR: the greedy
// bottom-up largest-pattern-first tree matcher that GlobalISel uses
// (paper §II-B), driven by a rule library — synthesized or handwritten —
// plus per-target hooks standing in for LLVM's C++ fallback selection
// (constant materialization, branch lowering, and operations TableGen
// cannot express, §VI-A).
//
// A Backend combines a rule library with a hook flavor; the experiment
// harness instantiates four per target, mirroring the paper's comparison:
// the synthesized backend, the handwritten GlobalISel analog, the
// SelectionDAG analog (handwritten plus extra folds), and the naive
// FastISel analog.
package isel

import (
	"fmt"

	"iselgen/internal/bv"
	"iselgen/internal/cost"
	"iselgen/internal/gmir"
	"iselgen/internal/isa"
	"iselgen/internal/mir"
	"iselgen/internal/obs"
	"iselgen/internal/pattern"
	"iselgen/internal/rules"
	"iselgen/internal/spec"
)

// Hooks are the target- and flavor-specific escape hatches (the C++
// analog). Each returns false when it cannot handle the request, which
// ultimately produces a function-level fallback (Table III).
type Hooks struct {
	// MatConst materializes a constant into a fresh register.
	MatConst func(c *Ctx, v bv.BV) (mir.Reg, bool)
	// LowerBrCond emits a conditional branch on `cond` (negated when
	// invert is set) to block `taken`, folding a feeding comparison when
	// profitable.
	LowerBrCond func(c *Ctx, cond gmir.Value, taken int, invert bool) bool
	// LowerInst handles selectable instructions no rule covered.
	LowerInst func(c *Ctx, in *gmir.Inst) bool
}

// Backend is a complete instruction selector.
type Backend struct {
	Name  string
	ISA   *isa.Target
	Lib   *rules.Library
	Hooks Hooks
	// Selector picks the engine (greedy by default). Model is the cost
	// table SelOptimal plans and compares against; nil defaults to the
	// target-derived table (see OptimalVariant in optimal.go).
	Selector SelectorKind
	Model    *cost.Table
	// Obs, when set, receives per-function selection spans, latency
	// histograms, and per-root decision provenance (rule chosen,
	// candidates rejected and why, hook and fallback outcomes).
	Obs *obs.Obs
}

// Report records selection outcomes for the coverage experiments.
type Report struct {
	Fallback       bool     // the function required the baseline (Table III)
	FallbackReason string   //
	HookInsts      int      // instructions handled by hooks (C++ analog)
	RuleInsts      int      // gMIR instructions covered by rules
	RulesUsed      []string // sequence names, in emission order
	Selector       string   // engine that produced the result ("greedy"/"optimal")
}

// Ctx is the per-function selection context passed to hooks.
type Ctx struct {
	B   *Backend
	F   *gmir.Function
	Out *mir.Func

	def   map[gmir.Value]*gmir.Inst
	uses  map[gmir.Value]int
	vreg  map[gmir.Value]mir.Reg
	cover map[*gmir.Inst]bool
	pos   map[*gmir.Inst]instPos

	cur     []*mir.Inst // emission buffer for the current root
	curRoot *gmir.Inst
	plan    map[*gmir.Inst]*planChoice // optimal-selector root decisions (nil = greedy)
	report  *Report
	err     error

	// obs is the observability sink for this emission pass — usually the
	// backend's, but nil for the optimal selector's shadow greedy pass so
	// the comparison run does not pollute greedy-engine metrics and
	// provenance with events no caller asked for.
	obs *obs.Obs

	// lastRejected holds the candidates tryRules rejected at the current
	// root when decision provenance is enabled, so a subsequent hook
	// lowering (or terminal failure) can attach them to its event.
	lastRejected []obs.RejectedCand
}

// Select lowers a gMIR function to machine IR. On failure (no rule, no
// hook) it returns a nil Func and a Report with Fallback set — the
// caller substitutes the baseline backend, as LLVM falls back to
// SelectionDAG (§VIII-A). With Selector == SelOptimal the lowering is
// DP-planned first (optimal.go) and guaranteed statically no more
// expensive than the greedy result under the backend's cost model.
func (b *Backend) Select(f *gmir.Function) (*mir.Func, *Report) {
	if b.Selector == SelOptimal {
		return b.selectOptimal(f)
	}
	return b.selectWithPlan(f, nil, b.Obs)
}

// selectWithPlan is the shared emission pass: greedy when plan is nil,
// otherwise each planned root commits to its DP-chosen rule before the
// largest-pattern-first chain is consulted. o is the observability sink
// for this pass (nil silences it — see Ctx.obs).
func (b *Backend) selectWithPlan(f *gmir.Function, plan map[*gmir.Inst]*planChoice, o *obs.Obs) (*mir.Func, *Report) {
	report := &Report{Selector: "greedy"}
	if plan != nil {
		report.Selector = "optimal"
	}
	tm := obs.Timed(o.TracerOrNil(), "isel/select")
	tm.Span().SetStr("fn", f.Name).SetStr("engine", report.Selector)
	defer func() {
		sp := tm.Span()
		sp.SetInt("rule_insts", int64(report.RuleInsts)).
			SetInt("hook_insts", int64(report.HookInsts))
		if report.Fallback {
			sp.SetStr("fallback", report.FallbackReason)
		}
		d := tm.Done()
		if m := o.MetricsOrNil(); m != nil {
			m.Histogram("isel_select_ns",
				"per-function selection latency by engine", "engine", report.Selector).
				Observe(d.Nanoseconds())
		}
		if report.Fallback {
			o.ProvOrNil().AddSel(obs.SelDecision{
				Fn: f.Name, Engine: report.Selector,
				Via: "fallback", Fallback: report.FallbackReason,
			})
		}
	}()
	gmir.SplitCriticalEdges(f)
	c := &Ctx{
		B: b, F: f,
		Out:    &mir.Func{Name: f.Name},
		def:    map[gmir.Value]*gmir.Inst{},
		uses:   map[gmir.Value]int{},
		vreg:   map[gmir.Value]mir.Reg{},
		cover:  map[*gmir.Inst]bool{},
		pos:    map[*gmir.Inst]instPos{},
		plan:   plan,
		report: report,
		obs:    o,
	}
	for _, blk := range f.Blocks {
		for idx, in := range blk.Insts {
			c.pos[in] = instPos{blk: blk, idx: idx}
			if in.Dst >= 0 {
				c.def[in.Dst] = in
			}
			for _, a := range in.Args {
				c.uses[a]++
			}
		}
	}
	for _, p := range f.Params {
		r := c.Out.NewReg()
		c.vreg[p.Val] = r
		c.Out.Params = append(c.Out.Params, r)
	}
	// Pre-assign phi destination registers and mark phi inputs as
	// referenced (they must live in registers at the edge).
	for _, blk := range f.Blocks {
		for _, in := range blk.Insts {
			if in.Op == gmir.GPhi {
				c.ensureReg(in.Dst)
				for _, a := range in.Args {
					c.ensureReg(a)
				}
			}
		}
	}

	outBlocks := map[int]*mir.Block{}
	phiCopies := map[int][]*mir.Inst{} // gmir pred block ID -> copies

	// Blocks and instructions are both processed in reverse: consumers
	// match before producers (so producers fold greedily into larger
	// patterns), and cross-block references register their values before
	// the defining block decides whether a constant is live.
	for _, blk := range f.Blocks {
		ob := &mir.Block{ID: blk.ID}
		outBlocks[blk.ID] = ob
		c.Out.Blocks = append(c.Out.Blocks, ob)
	}
	for bi := len(f.Blocks) - 1; bi >= 0; bi-- {
		blk := f.Blocks[bi]
		ob := outBlocks[blk.ID]
		var emitted [][]*mir.Inst
		for i := len(blk.Insts) - 1; i >= 0; i-- {
			in := blk.Insts[i]
			if c.cover[in] || in.Op == gmir.GPhi {
				continue
			}
			c.cur = nil
			c.curRoot = in
			c.selectRoot(blk, in)
			if c.err != nil {
				report.Fallback = true
				report.FallbackReason = c.err.Error()
				return nil, report
			}
			emitted = append(emitted, c.cur)
		}
		for i := len(emitted) - 1; i >= 0; i-- {
			ob.Insts = append(ob.Insts, emitted[i]...)
		}
	}

	// Phi copies: with critical edges split, every phi edge's
	// predecessor has a single successor; insert copies before its
	// terminator group.
	for _, blk := range f.Blocks {
		for _, in := range blk.Insts {
			if in.Op != gmir.GPhi {
				break
			}
			dst := c.vreg[in.Dst]
			for k, src := range in.Args {
				predID := in.PhiBlocks[k]
				srcReg, ok := c.vreg[src]
				if !ok {
					report.Fallback = true
					report.FallbackReason = fmt.Sprintf("phi input %%%d has no register", src)
					return nil, report
				}
				tmp := c.Out.NewReg()
				phiCopies[predID] = append(phiCopies[predID],
					&mir.Inst{Pseudo: mir.PCopy, Dsts: []mir.Reg{tmp}, Args: []mir.Operand{mir.R(srcReg)}},
					&mir.Inst{Pseudo: mir.PCopy, Dsts: []mir.Reg{dst}, Args: []mir.Operand{mir.R(tmp)}})
			}
		}
	}
	// Interleave the copies correctly: first all reads into temps, then
	// all writes — rebuild per-pred lists as (reads..., writes...).
	for predID, list := range phiCopies {
		var reads, writes []*mir.Inst
		for i := 0; i < len(list); i += 2 {
			reads = append(reads, list[i])
			writes = append(writes, list[i+1])
		}
		seqd := append(reads, writes...)
		ob := outBlocks[predID]
		pos := terminatorStart(ob)
		rest := append([]*mir.Inst(nil), ob.Insts[pos:]...)
		ob.Insts = append(ob.Insts[:pos:pos], append(seqd, rest...)...)
	}
	return c.Out, report
}

// terminatorStart finds where the trailing branch/ret group begins.
func terminatorStart(b *mir.Block) int {
	i := len(b.Insts)
	for i > 0 {
		in := b.Insts[i-1]
		if in.Pseudo == mir.PRet || len(in.Succs) > 0 {
			i--
			continue
		}
		break
	}
	return i
}

// --- Ctx services for hooks ---

// Emit appends an instruction for the current root, in program order.
func (c *Ctx) Emit(in *mir.Inst) { c.cur = append(c.cur, in) }

// emitGroup appends a group of instructions in program order.
func (c *Ctx) emitGroup(ins []*mir.Inst) { c.cur = append(c.cur, ins...) }

// NewReg allocates a machine register.
func (c *Ctx) NewReg() mir.Reg { return c.Out.NewReg() }

// Inst resolves an ISA instruction by name, panicking on typos (these
// are compile-time-known names in hook code).
func (c *Ctx) Inst(name string) *isa.Instruction {
	in := c.B.ISA.ByName(name)
	if in == nil {
		panic("isel: unknown instruction " + name)
	}
	return in
}

// DefOf returns the defining instruction of a value (nil for params).
func (c *Ctx) DefOf(v gmir.Value) *gmir.Inst { return c.def[v] }

// SingleUse reports whether a value has exactly one use.
func (c *Ctx) SingleUse(v gmir.Value) bool { return c.uses[v] == 1 }

// Covered reports whether an instruction was already matched into a
// pattern.
func (c *Ctx) Covered(in *gmir.Inst) bool { return c.cover[in] }

// MarkCovered consumes an instruction into the current pattern.
func (c *Ctx) MarkCovered(in *gmir.Inst) { c.cover[in] = true }

// ConstOf returns the constant value of v when defined by G_CONSTANT.
func (c *Ctx) ConstOf(v gmir.Value) (bv.BV, bool) {
	if d := c.def[v]; d != nil && d.Op == gmir.GConstant {
		return d.Imm, true
	}
	return bv.BV{}, false
}

// EnsureReg returns (allocating if needed) the register that will hold
// value v — the hook-facing variant of the internal helper.
func (c *Ctx) EnsureReg(v gmir.Value) mir.Reg { return c.ensureReg(v) }

func (c *Ctx) ensureReg(v gmir.Value) mir.Reg {
	if r, ok := c.vreg[v]; ok {
		return r
	}
	r := c.Out.NewReg()
	c.vreg[v] = r
	return r
}

// ValueReg returns the register holding v, scheduling v's def for
// materialization if it has not been selected as a root yet (it will be,
// because roots are processed in reverse and defs precede uses).
func (c *Ctx) ValueReg(v gmir.Value) mir.Reg {
	return c.ensureReg(v)
}

// TypeOf exposes value types to hooks.
func (c *Ctx) TypeOf(v gmir.Value) gmir.Type { return c.F.TypeOf(v) }

// failf records a selection failure (leading to function fallback).
func (c *Ctx) failf(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

// --- root selection ---

func (c *Ctx) selectRoot(blk *gmir.Block, in *gmir.Inst) {
	switch in.Op {
	case gmir.GBr:
		c.emitUncondBr(in.Succs[0])
		return
	case gmir.GRet:
		ret := &mir.Inst{Pseudo: mir.PRet}
		if len(in.Args) == 1 {
			ret.Args = []mir.Operand{mir.R(c.ValueReg(in.Args[0]))}
		}
		c.Emit(ret)
		return
	case gmir.GBrCond:
		// Prefer a layout where the fall-through edge needs no extra
		// jump: when the TAKEN successor is the next block instead,
		// invert the branch (what real codegen's block placement does).
		next := c.nextLayoutBlock(blk)
		taken, fall := in.Succs[0], in.Succs[1]
		invert := false
		if fall != next && taken == next {
			taken, fall = fall, taken
			invert = true
		}
		if c.B.Hooks.LowerBrCond != nil && c.B.Hooks.LowerBrCond(c, in.Args[0], taken, invert) {
			c.report.HookInsts++
			c.emitFallthrough(blk, fall)
			return
		}
		c.failf("no lowering for %s", in)
		return
	case gmir.GConstant:
		if _, referenced := c.vreg[in.Dst]; !referenced {
			return // dead or fully folded
		}
		c.materializeConst(in)
		return
	case gmir.GCopy:
		c.Emit(&mir.Inst{Pseudo: mir.PCopy, Dsts: []mir.Reg{c.ensureReg(in.Dst)},
			Args: []mir.Operand{mir.R(c.ValueReg(in.Args[0]))}})
		return
	}

	if !in.Op.IsSelectable() {
		c.failf("unselectable op %s", in)
		return
	}
	// s1 values live in registers as exactly 0 or 1, so zero-extension
	// is a plain copy (dead values skipped below as usual).
	if in.Op == gmir.GZExt && c.F.TypeOf(in.Args[0]) == gmir.S1 {
		if d := c.def[in.Args[0]]; d == nil || c.uses[in.Args[0]] > 1 || c.cover[d] {
			if _, referenced := c.vreg[in.Dst]; referenced || c.uses[in.Dst] > 0 {
				c.Emit(&mir.Inst{Pseudo: mir.PCopy, Dsts: []mir.Reg{c.ensureReg(in.Dst)},
					Args: []mir.Operand{mir.R(c.ValueReg(in.Args[0]))}})
			}
			return
		}
	}
	// Dead value: nothing references it.
	if in.Dst >= 0 {
		if _, referenced := c.vreg[in.Dst]; !referenced && c.uses[in.Dst] == 0 {
			return
		}
	}
	if c.tryRules(in) {
		return
	}
	if c.B.Hooks.LowerInst != nil && c.B.Hooks.LowerInst(c, in) {
		c.report.HookInsts++
		if prov := c.obs.ProvOrNil(); prov.Enabled() {
			prov.AddSel(obs.SelDecision{
				Fn: c.F.Name, Root: in.String(), Engine: c.report.Selector,
				Via: "hook", Rejected: c.lastRejected,
			})
			c.lastRejected = nil
		}
		return
	}
	if prov := c.obs.ProvOrNil(); prov.Enabled() {
		prov.AddSel(obs.SelDecision{
			Fn: c.F.Name, Root: in.String(), Engine: c.report.Selector,
			Via: "none", Rejected: c.lastRejected,
		})
		c.lastRejected = nil
	}
	c.failf("no rule for %s", in)
}

// nextLayoutBlock returns the ID of the block after blk in layout order
// (-1 at the end).
func (c *Ctx) nextLayoutBlock(blk *gmir.Block) int {
	for i, b := range c.F.Blocks {
		if b == blk {
			if i+1 < len(c.F.Blocks) {
				return c.F.Blocks[i+1].ID
			}
		}
	}
	return -1
}

// emitUncondBr emits the target's unconditional branch.
func (c *Ctx) emitUncondBr(target int) {
	name := map[string]string{
		"aarch64": "B", "riscv": "J", "x86": "JMP", "mini": "",
	}[c.B.ISA.Name]
	if name == "" {
		// Generic fallback: any instruction with a lone PC effect.
		for _, inst := range c.B.ISA.Insts {
			if inst.HasPCEffect() && len(inst.Effects) == 1 && len(inst.Operands) == 1 &&
				inst.Operands[0].Kind == spec.OpImm {
				name = inst.Name
				break
			}
		}
		if name == "" {
			c.failf("no unconditional branch instruction")
			return
		}
	}
	inst := c.Inst(name)
	c.Emit(&mir.Inst{Meta: inst,
		Args:  []mir.Operand{mir.I(bv.Zero(inst.Operands[0].Width))},
		Succs: []int{target}})
}

// emitFallthrough validates layout or inserts an extra jump.
func (c *Ctx) emitFallthrough(blk *gmir.Block, next int) {
	idx := -1
	for i, b := range c.F.Blocks {
		if b == blk {
			idx = i
		}
	}
	if idx+1 < len(c.F.Blocks) && c.F.Blocks[idx+1].ID == next {
		return // natural fallthrough
	}
	// Conditional branch whose false edge is not the next block: append
	// an unconditional jump after it.
	c.emitUncondBr(next)
}

// materializeConst emits the constant materialization for a referenced
// G_CONSTANT.
func (c *Ctx) materializeConst(in *gmir.Inst) {
	if c.B.Hooks.MatConst == nil {
		c.failf("no constant materialization hook")
		return
	}
	reg, ok := c.B.Hooks.MatConst(c, in.Imm)
	if !ok {
		c.failf("cannot materialize constant %s", in.Imm)
		return
	}
	c.report.HookInsts++
	dst := c.ensureReg(in.Dst)
	c.Emit(&mir.Inst{Pseudo: mir.PCopy, Dsts: []mir.Reg{dst}, Args: []mir.Operand{mir.R(reg)}})
}

// tryRules attempts rule-based selection at root `in`, largest pattern
// first (greedy), falling through rule chains on failed immediate
// constraints. When decision provenance is enabled the rejected
// candidates (and why each lost) are recorded alongside the winner;
// with it disabled, no per-candidate bookkeeping is assembled at all.
func (c *Ctx) tryRules(in *gmir.Inst) bool {
	key := rules.RootKey{Op: int(in.Op), Bits: in.Ty.Bits, Pred: int(in.Pred), MemBits: in.MemBits}
	if in.Op == gmir.GStore {
		key.Bits = 0
	}
	prov := c.obs.ProvOrNil()
	var rejected []obs.RejectedCand
	reject := func(r *rules.Rule, why matchFail) {
		if prov.Enabled() {
			rejected = append(rejected, obs.RejectedCand{Rule: r.Seq.String(), Reason: why.String()})
		}
	}
	chose := func(r *rules.Rule) {
		if prov.Enabled() {
			prov.AddSel(obs.SelDecision{
				Fn: c.F.Name, Root: in.String(), Engine: c.report.Selector,
				Chosen: r.Seq.String(), Via: "rule", Rejected: rejected,
			})
		}
	}
	// A DP plan overrides greedy dispatch: re-match at emission time (the
	// cover state differs from plan time only for values the plan itself
	// folded elsewhere, so a planned rule can only fail if a strictly
	// better consumer already consumed this root — fall through then).
	if pc, ok := c.plan[in]; ok {
		if b, okm := c.matchPattern(pc.rule, in); okm == matchOK {
			if c.emitRule(pc.rule, in, b) {
				chose(pc.rule)
				return true
			}
			reject(pc.rule, failEmit)
		} else {
			reject(pc.rule, okm)
		}
	}
	for _, r := range c.B.Lib.Candidates(key) {
		if binding, okm := c.matchPattern(r, in); okm == matchOK {
			if c.emitRule(r, in, binding) {
				chose(r)
				return true
			}
			reject(r, failEmit)
		} else {
			reject(r, okm)
		}
	}
	// Bool-valued roots (s1) have no direct rules (ISA registers are
	// 32/64-bit): match as zext-to-32/64 and keep the 0/1 value.
	if in.Ty == gmir.S1 && in.Op != gmir.GStore {
		if c.tryBoolRoot(in) {
			return true
		}
	}
	// No rule applied; remember why so the hook/failure path that follows
	// can attach the rejections to its own event.
	c.lastRejected = rejected
	return false
}

// tryBoolRoot wraps an s1 root in a synthetic zext pattern root: the
// matched rule produces the 0/1 value in a full-width register, which is
// exactly the s1 register convention.
func (c *Ctx) tryBoolRoot(in *gmir.Inst) bool {
	for _, bits := range []int{32, 64} {
		key := rules.RootKey{Op: int(gmir.GZExt), Bits: bits}
		for _, r := range c.B.Lib.Candidates(key) {
			root := r.Pattern.Root
			if len(root.Args) != 1 || root.Args[0].IsLeaf() {
				continue
			}
			// Match the zext's operand subtree directly at the root (no
			// single-use requirement: `in` IS the root being selected).
			b := &matchBinding{leafVals: make([]valOperand, countLeaves(root.Args[0]))}
			leafIdx := 0
			if !c.matchTree(root.Args[0], in, b, &leafIdx) {
				continue
			}
			okc := true
			for leaf, want := range r.LeafConsts {
				cv, has := c.ConstOf(b.leafVals[leaf].val)
				if !has || cv != want {
					okc = false
					break
				}
			}
			for _, src := range r.Operands {
				if src.Kind == rules.SrcLeaf && src.Embed != nil {
					cv, ok := c.ConstOf(b.leafVals[src.Leaf].val)
					if !ok {
						okc = false
						break
					}
					if _, ok := src.Embed.Decode(cv); !ok {
						okc = false
						break
					}
				}
			}
			if okc && c.emitRule(r, in, b) {
				return true
			}
		}
	}
	return false
}

// instPos locates an instruction for load-folding safety checks.
type instPos struct {
	blk *gmir.Block
	idx int
}

// valOperand identifies a matched gMIR operand.
type valOperand struct {
	val gmir.Value
	def *gmir.Inst
}

// binding maps pattern leaves to matched operands, and records interior
// instructions to cover.
type matchBinding struct {
	leafVals []valOperand
	interior []*gmir.Inst
}

// matchFail classifies why a candidate rule did not match — a compact
// enum so the hot path stays allocation-free; the string form is only
// materialized when decision provenance is enabled.
type matchFail int8

const (
	matchOK       matchFail = iota
	failShape               // tree structure / op / type / predicate mismatch
	failLeafConst           // exact-constant leaf constraint not satisfied
	failImmDecode           // immediate leaf not constant or not encodable
)

func (m matchFail) String() string {
	switch m {
	case matchOK:
		return "ok"
	case failShape:
		return "shape-mismatch"
	case failLeafConst:
		return "leaf-const-mismatch"
	case failImmDecode:
		return "imm-not-encodable"
	default:
		return "emit-failed"
	}
}

// failEmit marks a rule that matched but whose emission bailed out.
const failEmit matchFail = -1

// matchPattern matches a rule's full pattern at root `in`.
func (c *Ctx) matchPattern(r *rules.Rule, in *gmir.Inst) (*matchBinding, matchFail) {
	b := &matchBinding{leafVals: make([]valOperand, len(r.Pattern.Leaves()))}
	leafIdx := 0
	if !c.matchTree(r.Pattern.Root, in, b, &leafIdx) {
		return nil, failShape
	}
	// Exact-constant leaf constraints (manual rules like BIC's xor -1).
	for leaf, want := range r.LeafConsts {
		cv, ok := c.ConstOf(b.leafVals[leaf].val)
		if !ok || cv != want {
			return nil, failLeafConst
		}
	}
	// Immediate constraints: every imm leaf must decode.
	for _, src := range r.Operands {
		if src.Kind != rules.SrcLeaf || src.Embed == nil {
			continue
		}
		cv, ok := c.ConstOf(b.leafVals[src.Leaf].val)
		if !ok {
			return nil, failImmDecode
		}
		if _, ok := src.Embed.Decode(cv); !ok {
			return nil, failImmDecode
		}
	}
	return b, matchOK
}

// matchNode matches a pattern subtree against a value operand.
func (c *Ctx) matchNode(n *pattern.Node, vo valOperand, b *matchBinding) (*matchBinding, bool) {
	if b == nil {
		b = &matchBinding{leafVals: make([]valOperand, countLeaves(n))}
	}
	leafIdx := 0
	if !c.matchSub(n, vo, b, &leafIdx) {
		return nil, false
	}
	return b, true
}

func countLeaves(n *pattern.Node) int {
	if n.IsLeaf() {
		return 1
	}
	c := 0
	for _, a := range n.Args {
		c += countLeaves(a)
	}
	return c
}

// matchTree matches the root node against instruction `in`.
func (c *Ctx) matchTree(n *pattern.Node, in *gmir.Inst, b *matchBinding, leafIdx *int) bool {
	if n.IsLeaf() {
		return false
	}
	if n.Op != in.Op || n.Ty != in.Ty || n.Pred != in.Pred || n.MemBits != in.MemBits {
		return false
	}
	if len(n.Args) != len(in.Args) {
		return false
	}
	for i, a := range n.Args {
		vo := valOperand{val: in.Args[i], def: c.def[in.Args[i]]}
		if !c.matchSub(a, vo, b, leafIdx) {
			return false
		}
	}
	return true
}

// matchSub matches a pattern node (leaf or interior) against an operand.
func (c *Ctx) matchSub(n *pattern.Node, vo valOperand, b *matchBinding, leafIdx *int) bool {
	if n.IsLeaf() {
		if n.Ty != c.F.TypeOf(vo.val) {
			return false
		}
		if !n.LeafReg {
			// Immediate leaf: the operand must be a constant def.
			if vo.def == nil || vo.def.Op != gmir.GConstant {
				return false
			}
		}
		b.leafVals[*leafIdx] = vo
		*leafIdx++
		return true
	}
	// Interior: the operand must be defined by a matching, single-use,
	// not-yet-covered instruction (folding a multi-use def would
	// duplicate work).
	if vo.def == nil || c.cover[vo.def] || !c.SingleUse(vo.val) {
		return false
	}
	// Folding a load moves it to the root's position: only sound within
	// one block with no intervening store.
	if vo.def.Op == gmir.GLoad || vo.def.Op == gmir.GSLoad {
		if !c.loadFoldSafe(vo.def) {
			return false
		}
	}
	if !c.matchTree(n, vo.def, b, leafIdx) {
		return false
	}
	b.interior = append(b.interior, vo.def)
	return true
}

// loadFoldSafe reports whether folding `load` into the current root
// crosses no store.
func (c *Ctx) loadFoldSafe(load *gmir.Inst) bool {
	lp, ok1 := c.pos[load]
	rp, ok2 := c.pos[c.curRoot]
	if !ok1 || !ok2 || lp.blk != rp.blk {
		return false
	}
	for i := lp.idx + 1; i < rp.idx; i++ {
		if lp.blk.Insts[i].Op == gmir.GStore {
			return false
		}
	}
	return true
}

// emitRule emits the machine instructions of a matched rule.
func (c *Ctx) emitRule(r *rules.Rule, root *gmir.Inst, b *matchBinding) bool {
	// Resolve operand values first (pure; no emission yet).
	seq := r.Seq
	// Values for sequence inputs, keyed by (instruction index, operand name).
	inVals := map[string]mir.Operand{}
	for k, in := range seq.Inputs {
		src := r.Operands[k]
		var op mir.Operand
		switch src.Kind {
		case rules.SrcConst:
			op = mir.I(src.Const)
		case rules.SrcLeaf:
			vo := b.leafVals[src.Leaf]
			if src.Embed != nil {
				cv, _ := c.ConstOf(vo.val)
				e, ok := src.Embed.Decode(cv)
				if !ok {
					return false
				}
				if e.W() < in.Op.Width {
					e = e.ZExt(in.Op.Width)
				}
				op = mir.I(e)
			} else {
				op = mir.R(c.ValueReg(vo.val))
			}
		}
		inVals[fmt.Sprintf("%d.%s", in.Inst, in.Op.Name)] = op
	}

	// Wire intermediate results through fresh registers; the final
	// instruction writes the root's register.
	var prevReg mir.Reg
	var emitted []*mir.Inst
	for idx, inst := range seq.Insts {
		m := &mir.Inst{Meta: inst}
		for _, opnd := range inst.Operands {
			keyName := fmt.Sprintf("%d.%s", idx, opnd.Name)
			if v, ok := inVals[keyName]; ok {
				m.Args = append(m.Args, v)
				continue
			}
			wired := false
			for _, wname := range seq.Wirings[idx] {
				if wname == opnd.Name {
					wired = true
				}
			}
			if wired {
				m.Args = append(m.Args, mir.R(prevReg))
			} else if opnd.Kind == spec.OpImm {
				// Fixed by sequence specialization, else pruned as unused
				// (safe to emit zero).
				val := bv.Zero(opnd.Width)
				for _, fi := range seq.FixedImms {
					if fi.Inst == idx && fi.Op == opnd.Name {
						val = fi.Val
					}
				}
				m.Args = append(m.Args, mir.I(val))
			} else {
				return false
			}
		}
		// Destination registers.
		if hasRegEffect(inst) {
			var dst mir.Reg
			if idx == len(seq.Insts)-1 && root.Dst >= 0 {
				dst = c.ensureReg(root.Dst)
			} else {
				dst = c.NewReg()
			}
			m.Dsts = []mir.Reg{dst}
			prevReg = dst
		}
		emitted = append(emitted, m)
	}
	c.emitGroup(emitted)
	for _, in := range b.interior {
		c.MarkCovered(in)
	}
	c.report.RuleInsts += 1 + len(b.interior)
	c.report.RulesUsed = append(c.report.RulesUsed, seq.String())
	return true
}

func hasRegEffect(inst *isa.Instruction) bool {
	for _, e := range inst.Effects {
		if e.Kind == spec.EffReg {
			return true
		}
	}
	return false
}

// Prepare runs the pre-selection gMIR passes a target expects — the
// analog of the last middle-end/legalization steps before GlobalISel's
// selector runs: constant CSE, plus expansions for operations the target
// has no instruction for (remainder on AArch64, abs on RISC-V).
func Prepare(f *gmir.Function, target string) {
	gmir.CSEConstants(f)
	switch target {
	case "aarch64":
		gmir.LowerRem(f)
	case "riscv":
		gmir.LowerAbs(f)
	}
}
