package mir

import (
	"strings"
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/isa"
	"iselgen/internal/term"
)

func inst(t *testing.T) *isa.Instruction {
	t.Helper()
	b := term.NewBuilder()
	tgt, err := isa.LoadTarget(b, "m", `inst ADD(rn: reg64, rm: reg64) { rd = rn + rm; }`,
		map[string]int{"ADD": 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return tgt.ByName("ADD")
}

func TestSizeAndLatency(t *testing.T) {
	add := inst(t)
	in := &Inst{Meta: add, Dsts: []Reg{2}, Args: []Operand{R(0), R(1)}}
	if in.Size() != 4 || in.Latency() != 2 {
		t.Errorf("size=%d latency=%d", in.Size(), in.Latency())
	}
	cp := &Inst{Pseudo: PCopy, Dsts: []Reg{1}, Args: []Operand{R(0)}}
	if cp.Latency() != 1 {
		t.Errorf("copy latency = %d", cp.Latency())
	}
}

func TestFuncAccounting(t *testing.T) {
	add := inst(t)
	f := &Func{Name: "f", NumRegs: 3, Params: []Reg{0, 1}}
	f.Blocks = []*Block{
		{ID: 0, Insts: []*Inst{
			{Meta: add, Dsts: []Reg{2}, Args: []Operand{R(0), R(1)}},
			{Pseudo: PRet, Args: []Operand{R(2)}},
		}},
	}
	if f.NumInsts() != 2 {
		t.Errorf("insts = %d", f.NumInsts())
	}
	if f.BinarySize() != 8 {
		t.Errorf("size = %d", f.BinarySize())
	}
	r := f.NewReg()
	if r != 3 || f.NumRegs != 4 {
		t.Errorf("NewReg = %d, NumRegs = %d", r, f.NumRegs)
	}
	if f.BlockByID(0) == nil || f.BlockByID(5) != nil {
		t.Error("BlockByID lookup wrong")
	}
}

func TestString(t *testing.T) {
	add := inst(t)
	f := &Func{Name: "f"}
	f.Blocks = []*Block{{ID: 0, Insts: []*Inst{
		{Meta: add, Dsts: []Reg{2}, Args: []Operand{R(0), I(bv.New(12, 7))}, Succs: []int{3}},
		{Pseudo: PCopy, Dsts: []Reg{4}, Args: []Operand{R(2)}},
		{Pseudo: PRet},
	}}}
	s := f.String()
	for _, want := range []string{"%2 = ADD %0 #x007", "->bb3", "%4 = COPY %2", "RET"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
