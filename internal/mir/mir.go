// Package mir is the target machine IR produced by instruction
// selection: virtual-register machine instructions referencing the ISA
// instruction definitions whose effect terms also drive the simulator.
// It plays the role of LLVM's MIR (paper Fig. 2, stage III).
package mir

import (
	"fmt"
	"strings"

	"iselgen/internal/bv"
	"iselgen/internal/isa"
)

// Reg is a virtual register number.
type Reg int

// Operand is one instruction operand: a register or an immediate.
type Operand struct {
	IsImm bool
	Reg   Reg
	Imm   bv.BV
}

// R makes a register operand.
func R(r Reg) Operand { return Operand{Reg: r} }

// I makes an immediate operand.
func I(v bv.BV) Operand { return Operand{IsImm: true, Imm: v} }

// Pseudo identifies non-ISA instructions the backend needs.
type Pseudo int

// Pseudo opcodes.
const (
	PNone Pseudo = iota
	PCopy        // Dsts[0] := Args[0]
	PRet         // return Args[0] (optional)
)

// Inst is one machine instruction.
type Inst struct {
	// Meta is the ISA instruction; nil for pseudos.
	Meta   *isa.Instruction
	Pseudo Pseudo
	// Dsts are the written registers: the primary result first, then any
	// write-back destination.
	Dsts []Reg
	// Args parallel Meta.Operands (or the pseudo's convention).
	Args []Operand
	// Succs: for PC-effect instructions, the taken-branch target block
	// (unconditional branches have exactly one successor; conditional
	// ones fall through to the next block in layout otherwise).
	Succs []int
}

// Size returns the encoded size in bytes (pseudos count like a move).
func (in *Inst) Size() int {
	if in.Meta != nil {
		return in.Meta.Size
	}
	if in.Pseudo == PRet {
		return 4
	}
	return 4
}

// Latency returns the simulator cycle cost.
func (in *Inst) Latency() int {
	if in.Meta != nil {
		return in.Meta.Latency
	}
	return 1
}

func (in *Inst) String() string {
	var sb strings.Builder
	switch {
	case in.Pseudo == PCopy:
		fmt.Fprintf(&sb, "%%%d = COPY", in.Dsts[0])
	case in.Pseudo == PRet:
		sb.WriteString("RET")
	default:
		if len(in.Dsts) > 0 {
			for i, d := range in.Dsts {
				if i > 0 {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "%%%d", d)
			}
			sb.WriteString(" = ")
		}
		sb.WriteString(in.Meta.Name)
	}
	for _, a := range in.Args {
		if a.IsImm {
			fmt.Fprintf(&sb, " %s", a.Imm)
		} else {
			fmt.Fprintf(&sb, " %%%d", a.Reg)
		}
	}
	for _, s := range in.Succs {
		fmt.Fprintf(&sb, " ->bb%d", s)
	}
	return sb.String()
}

// Block is a basic block of machine instructions. Layout order is the
// slice order in Func.Blocks; conditional branches fall through to the
// next block in layout.
type Block struct {
	ID    int
	Insts []*Inst
}

// Func is a machine function.
type Func struct {
	Name    string
	Params  []Reg
	Blocks  []*Block
	NumRegs int
}

// NewReg allocates a fresh virtual register.
func (f *Func) NewReg() Reg {
	r := Reg(f.NumRegs)
	f.NumRegs++
	return r
}

// BlockByID finds a block.
func (f *Func) BlockByID(id int) *Block {
	for _, b := range f.Blocks {
		if b.ID == id {
			return b
		}
	}
	return nil
}

// NumInsts counts instructions (pseudos included).
func (f *Func) NumInsts() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Insts)
	}
	return n
}

// BinarySize returns the total encoded size in bytes — the §VIII-C
// binary-size metric.
func (f *Func) BinarySize() int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			n += in.Size()
		}
	}
	return n
}

func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "machine function %s\n", f.Name)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "bb%d:\n", b.ID)
		for _, in := range b.Insts {
			sb.WriteString("  ")
			sb.WriteString(in.String())
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
