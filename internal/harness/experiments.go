package harness

import (
	"fmt"
	"sort"
	"strings"

	"iselgen/internal/rules"
)

// Fig6 renders the pattern-size and instruction-sequence-length
// distributions of the handwritten baseline library versus the
// synthesized library — the paper's Fig. 6, which motivates the search
// bounds (sequences ≤ 2 instructions, patterns ≤ 6 operations).
func Fig6(s *Setup, synth *rules.Library) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 6 analog — %s rule length distributions\n\n", s.Name)
	hand := s.Handwritten.Lib
	dist := func(lib *rules.Library) (seqLen, patSize map[int]int) {
		st := lib.Summarize()
		return st.BySeqLen, st.ByPatternSize
	}
	hs, hp := dist(hand)
	ss, sp := dist(synth)
	writeDist := func(title string, hw, gen map[int]int) {
		fmt.Fprintf(&sb, "%s\n", title)
		maxK := 0
		for k := range hw {
			if k > maxK {
				maxK = k
			}
		}
		for k := range gen {
			if k > maxK {
				maxK = k
			}
		}
		hTot, gTot := 0, 0
		for _, v := range hw {
			hTot += v
		}
		for _, v := range gen {
			gTot += v
		}
		fmt.Fprintf(&sb, "  %-6s %18s %18s\n", "len", "handwritten", "generated")
		for k := 0; k <= maxK; k++ {
			if hw[k] == 0 && gen[k] == 0 {
				continue
			}
			fmt.Fprintf(&sb, "  %-6d %9d (%4.1f%%) %9d (%4.1f%%)\n", k,
				hw[k], pct(hw[k], hTot), gen[k], pct(gen[k], gTot))
		}
	}
	writeDist("instruction sequence length:", hs, ss)
	sb.WriteByte('\n')
	writeDist("pattern size (gMIR operations):", hp, sp)
	return sb.String()
}

func pct(n, tot int) float64 {
	if tot == 0 {
		return 0
	}
	return 100 * float64(n) / float64(tot)
}

// TableIII renders the GlobalISel-fallback accounting: which workload
// functions each backend could not select declaratively (paper Table III
// counts functions falling back to SelectionDAG).
func TableIII(rows []Row) string {
	var sb strings.Builder
	sb.WriteString("Table III analog — selection fallbacks per workload function\n\n")
	byWorkload := map[string]map[string]Row{}
	backends := map[string]bool{}
	var names []string
	for _, r := range rows {
		if byWorkload[r.Workload] == nil {
			byWorkload[r.Workload] = map[string]Row{}
			names = append(names, r.Workload)
		}
		byWorkload[r.Workload][r.Backend] = r
		backends[r.Backend] = true
	}
	sort.Strings(names)
	var bks []string
	for bk := range backends {
		bks = append(bks, bk)
	}
	sort.Strings(bks)
	fmt.Fprintf(&sb, "%-18s", "workload")
	for _, bk := range bks {
		fmt.Fprintf(&sb, " %12s", bk)
	}
	sb.WriteByte('\n')
	totals := map[string]int{}
	for _, n := range names {
		fmt.Fprintf(&sb, "%-18s", n)
		for _, bk := range bks {
			mark := "0"
			if byWorkload[n][bk].Fallback {
				mark = "1"
				totals[bk]++
			}
			fmt.Fprintf(&sb, " %12s", mark)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-18s", "total")
	for _, bk := range bks {
		fmt.Fprintf(&sb, " %12d", totals[bk])
	}
	sb.WriteByte('\n')
	return sb.String()
}

// SizeTable renders static code size per backend (§VIII-C's binary-size
// comparison).
func SizeTable(rows []Row) string {
	var sb strings.Builder
	sb.WriteString("§VIII-C analog — binary size (bytes of code)\n\n")
	byWorkload := map[string]map[string]int{}
	backends := map[string]bool{}
	var names []string
	for _, r := range rows {
		if byWorkload[r.Workload] == nil {
			byWorkload[r.Workload] = map[string]int{}
			names = append(names, r.Workload)
		}
		byWorkload[r.Workload][r.Backend] = r.Size
		backends[r.Backend] = true
	}
	sort.Strings(names)
	var bks []string
	for bk := range backends {
		bks = append(bks, bk)
	}
	sort.Strings(bks)
	fmt.Fprintf(&sb, "%-18s", "workload")
	for _, bk := range bks {
		fmt.Fprintf(&sb, " %12s", bk)
	}
	sb.WriteString("  synth/gisel\n")
	var sumS, sumG int
	for _, n := range names {
		fmt.Fprintf(&sb, "%-18s", n)
		for _, bk := range bks {
			fmt.Fprintf(&sb, " %12d", byWorkload[n][bk])
		}
		g, ok1 := byWorkload[n]["globalisel"]
		syn, ok2 := byWorkload[n]["synth"]
		if ok1 && ok2 && g > 0 {
			fmt.Fprintf(&sb, "  %10.3f", float64(syn)/float64(g))
			sumS += syn
			sumG += g
		}
		sb.WriteByte('\n')
	}
	if sumG > 0 {
		fmt.Fprintf(&sb, "overall synth/globalisel size ratio: %.3f\n", float64(sumS)/float64(sumG))
	}
	return sb.String()
}
