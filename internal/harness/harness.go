// Package harness wires the full reproduction together: it loads a
// target, builds the synthesis pool, extracts the IR pattern corpus from
// the benchmark suite (the CTMark analog, §VII-B), synthesizes the rule
// library, constructs all backends (synthesized + baselines), and runs
// the SPEC-analog evaluation — everything the paper's tables and figures
// need, shared between the CLI tools and the benchmark harness.
package harness

import (
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"iselgen/internal/bench"
	"iselgen/internal/bv"
	"iselgen/internal/core"
	"iselgen/internal/cost"
	"iselgen/internal/gmir"
	"iselgen/internal/isa"
	"iselgen/internal/isa/aarch64"
	"iselgen/internal/isa/riscv"
	"iselgen/internal/isel"
	"iselgen/internal/obs"
	"iselgen/internal/pattern"
	"iselgen/internal/rules"
	"iselgen/internal/sim"
	"iselgen/internal/term"
)

// Setup is a fully-loaded target with its baselines and (after
// Synthesize) the synthesized backend.
type Setup struct {
	Name      string
	B         *term.Builder
	ISA       *isa.Target
	Baselines []*isel.Backend // ordered: most optimized first
	Synth     *isel.Backend
	SynthLib  *rules.Library
	Synther   *core.Synthesizer
	// Handwritten is the GlobalISel-analog baseline (also the fallback
	// backend when selection fails, mirroring §VIII-A).
	Handwritten *isel.Backend
	// SynthOpt is the optimal-selector variant of the synthesized
	// backend ("synthopt"), built only when Synthesize ran with a cost
	// model; Model is that table (nil means legacy metadata costs).
	SynthOpt *isel.Backend
	Model    *cost.Table
}

// AttachObs stamps the observability sink onto every backend the setup
// holds (baselines, synthesized, optimal variant), so selection spans
// and decision provenance from all engines land in one place. Call it
// after Synthesize so the synthesized backends exist.
func (s *Setup) AttachObs(o *obs.Obs) {
	for _, b := range s.Baselines {
		if b != nil {
			b.Obs = o
		}
	}
	for _, b := range []*isel.Backend{s.Synth, s.SynthOpt, s.Handwritten} {
		if b != nil {
			b.Obs = o
		}
	}
}

var (
	costModelMu  sync.Mutex
	costModelTab = map[string]*cost.Table{}
)

// CostModel returns the target-derived cost table for a known target
// name ("aarch64"/"riscv"), cached process-wide: deriving it needs the
// full ISA spec load, and every layer (synthesis config, sim, service
// requests) wants the same table so cache keys agree.
func CostModel(name string) (*cost.Table, error) {
	costModelMu.Lock()
	defer costModelMu.Unlock()
	if t, ok := costModelTab[name]; ok {
		return t, nil
	}
	b := term.NewBuilder()
	var (
		tgt *isa.Target
		err error
	)
	switch name {
	case "aarch64":
		tgt, err = aarch64.Load(b)
	case "riscv":
		tgt, err = riscv.Load(b)
	default:
		return nil, fmt.Errorf("cost model: unknown target %q", name)
	}
	if err != nil {
		return nil, err
	}
	t := cost.FromTarget(tgt)
	costModelTab[name] = t
	return t, nil
}

// NewAArch64 loads the AArch64 target and baselines.
func NewAArch64() (*Setup, error) {
	b := term.NewBuilder()
	tgt, err := aarch64.Load(b)
	if err != nil {
		return nil, err
	}
	set := isel.NewA64Backends(b, tgt)
	return &Setup{
		Name: "aarch64", B: b, ISA: tgt,
		Baselines:   []*isel.Backend{set.DAG, set.Handwritten, set.Naive},
		Handwritten: set.Handwritten,
	}, nil
}

// NewRISCV loads the RISC-V target and baselines (no FastISel analog, as
// in the paper).
func NewRISCV() (*Setup, error) {
	b := term.NewBuilder()
	tgt, err := riscv.Load(b)
	if err != nil {
		return nil, err
	}
	set := isel.NewRVBackends(b, tgt)
	return &Setup{
		Name: "riscv", B: b, ISA: tgt,
		Baselines:   []*isel.Backend{set.DAG, set.Handwritten},
		Handwritten: set.Handwritten,
	}, nil
}

// ExtraSequences returns the target's §VII-A special sequences: the
// RISC-V zero-extension chains appended to W-form arithmetic.
func ExtraSequences(name string) func(b *term.Builder, t *isa.Target) []*isa.Sequence {
	if name != "riscv" {
		return nil
	}
	return func(b *term.Builder, t *isa.Target) []*isa.Sequence {
		var out []*isa.Sequence
		for _, base := range []string{"ADDW", "SUBW", "MULW", "SLLW", "SRLW", "SRAW", "ADDIW"} {
			inst := t.ByName(base)
			if inst == nil {
				continue
			}
			seq := isa.Single(b, inst)
			s2, err := isa.Append(b, seq, t.ByName("SLLI"), []string{"rs1"}, false)
			if err != nil {
				continue
			}
			s2, err = isa.BindImm(b, s2, 1, "sh", bv.New(6, 32))
			if err != nil {
				continue
			}
			s3, err := isa.Append(b, s2, t.ByName("SRLI"), []string{"rs1"}, false)
			if err != nil {
				continue
			}
			s3, err = isa.BindImm(b, s3, 2, "sh", bv.New(6, 32))
			if err != nil {
				continue
			}
			out = append(out, s3)
		}
		return out
	}
}

// CorpusPatterns extracts the ranked pattern pool from the benchmark
// suite, prepared the way the target's selector will see it, and unions
// in the seed patterns. The corpus plays the role of CTMark (§VII-B);
// because it is far smaller than CTMark, the systematically important
// single-operation and comparison-chain shapes are seeded explicitly
// (they all occur in CTMark-scale corpora).
func CorpusPatterns(targetName string, maxPatterns int) []*pattern.Pattern {
	ex := pattern.NewExtractor()
	for _, w := range bench.Suite(1) {
		f := w.Build()
		isel.Prepare(f, targetName)
		ex.AddFunction(f)
	}
	ranked := ex.Ranked()
	seen := map[string]bool{}
	for _, p := range ranked {
		seen[p.Key()] = true
	}
	for _, p := range SeedPatterns() {
		if !seen[p.Key()] {
			seen[p.Key()] = true
			ranked = append(ranked, p)
		}
	}
	if maxPatterns > 0 && len(ranked) > maxPatterns {
		ranked = ranked[:maxPatterns]
	}
	return ranked
}

// SeedPatterns enumerates the baseline pattern shapes every corpus of
// CTMark scale contains: one pattern per selectable operation and type,
// immediate variants, comparison-to-boolean chains for every predicate,
// select-of-comparison, and the load/store addressing shapes.
func SeedPatterns() []*pattern.Pattern {
	var out []*pattern.Pattern
	add := func(n *pattern.Node) { out = append(out, pattern.New(n)) }
	r := func(bits int) *pattern.Node { return pattern.Leaf(gmir.Type{Bits: bits}) }
	i := func(bits int) *pattern.Node { return pattern.ImmLeaf(gmir.Type{Bits: bits}) }
	op := func(o gmir.Opcode, bits int, args ...*pattern.Node) *pattern.Node {
		return pattern.Op(o, gmir.Type{Bits: bits}, args...)
	}
	for _, w := range []int{32, 64} {
		for _, o := range []gmir.Opcode{gmir.GAdd, gmir.GSub, gmir.GMul,
			gmir.GUDiv, gmir.GSDiv, gmir.GURem, gmir.GSRem,
			gmir.GAnd, gmir.GOr, gmir.GXor, gmir.GShl, gmir.GLShr, gmir.GAShr,
			gmir.GSMin, gmir.GSMax, gmir.GUMin, gmir.GUMax} {
			add(op(o, w, r(w), r(w)))
			add(op(o, w, r(w), i(w)))
		}
		for _, o := range []gmir.Opcode{gmir.GCtlz, gmir.GCtpop, gmir.GBSwap, gmir.GAbs} {
			add(op(o, w, r(w)))
		}
		// Comparison chains for every predicate.
		for p := gmir.PredEQ; p <= gmir.PredSGE; p++ {
			cmpRR := &pattern.Node{Op: gmir.GICmp, Ty: gmir.S1, Pred: p,
				Args: []*pattern.Node{r(w), r(w)}}
			cmpRI := &pattern.Node{Op: gmir.GICmp, Ty: gmir.S1, Pred: p,
				Args: []*pattern.Node{r(w), i(w)}}
			for _, zw := range []int{32, 64} {
				add(op(gmir.GZExt, zw, cmpRR))
				add(op(gmir.GZExt, zw, cmpRI))
			}
			add(op(gmir.GSelect, w, cmpRR, r(w), r(w)))
			add(op(gmir.GSelect, w, cmpRI, r(w), r(w)))
		}
	}
	add(op(gmir.GZExt, 64, r(32)))
	add(op(gmir.GSExt, 64, r(32)))
	add(op(gmir.GTrunc, 32, r(64)))
	add(op(gmir.GPtrAdd, 64, r(64), r(64)))
	add(op(gmir.GPtrAdd, 64, r(64), i(64)))
	// Loads and stores: plain, immediate-offset, register-offset,
	// shifted-register addressing.
	addrs := func() []*pattern.Node {
		return []*pattern.Node{
			r(64),
			op(gmir.GPtrAdd, 64, r(64), i(64)),
			op(gmir.GPtrAdd, 64, r(64), r(64)),
			op(gmir.GPtrAdd, 64, r(64), op(gmir.GShl, 64, r(64), i(64))),
		}
	}
	for _, mem := range []int{8, 16, 32, 64} {
		for _, lo := range []gmir.Opcode{gmir.GLoad, gmir.GSLoad} {
			for _, ty := range []int{32, 64} {
				if mem > ty || (mem == ty && lo == gmir.GSLoad) {
					continue
				}
				for _, a := range addrs() {
					add(pattern.LoadOp(lo, gmir.Type{Bits: ty}, mem, a))
				}
			}
		}
		for _, ty := range []int{32, 64} {
			if mem > ty {
				continue
			}
			for _, a := range addrs() {
				add(pattern.StoreOp(mem, r(ty), a))
			}
		}
	}
	return out
}

// Synthesize builds the pool (if needed) and synthesizes the rule
// library from the corpus, then constructs the synthesized backend.
// With cfg.CostModel set, rules are cost-stamped, synthesis ranks by
// the model, and a second "synthopt" backend running the optimal DP
// selector is built alongside the greedy one.
func (s *Setup) Synthesize(cfg core.Config, maxPatterns int) *rules.Library {
	// Full synthesis is a short-lived batch phase that allocates heavily
	// (term DAGs, candidate sequences, SAT clauses) with a modest live
	// set; at the default GOGC the collector runs dozens of cycles and
	// accounts for over a third of wall time — and because the live set
	// collapses to under a megabyte between stages, even a very large
	// GOGC still thrashes against the runtime's minimum heap. So for the
	// duration of the batch, proportional GC is disabled outright and a
	// fixed soft memory limit becomes the only trigger: the whole run
	// allocates ~600 MB total with a peak live set under 100 MB, so a
	// 1 GiB ceiling means the collector runs at most once or twice.
	// Both knobs are restored on return — the harness drives CLIs and
	// tests, not long-lived servers, but callers keep their settings.
	defer debug.SetMemoryLimit(debug.SetMemoryLimit(1 << 30))
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if cfg.ExtraSequences == nil {
		cfg.ExtraSequences = ExtraSequences(s.Name)
	}
	if s.Synther == nil {
		s.Synther = core.New(s.B, s.ISA, cfg)
		s.Synther.BuildPool()
	}
	lib := rules.NewLibrary(s.Name)
	lib.Model = cfg.CostModel
	pats := CorpusPatterns(s.Name, maxPatterns)
	s.Synther.Synthesize(pats, lib)
	s.SynthLib = lib
	switch s.Name {
	case "aarch64":
		s.Synth = isel.NewA64Synth(s.ISA, lib)
	case "riscv":
		s.Synth = isel.NewRVSynth(s.ISA, lib)
	}
	s.Model = cfg.CostModel
	s.SynthOpt = nil
	if cfg.CostModel != nil && s.Synth != nil {
		s.SynthOpt = isel.OptimalVariant(s.Synth, cfg.CostModel)
		s.SynthOpt.Name = "synthopt"
	}
	return lib
}

// Row is one (workload, backend) measurement.
type Row struct {
	Workload string
	Backend  string
	Cycles   int64
	Insts    int64
	Size     int
	Fallback bool
	HookPct  float64
	Checksum bv.BV
	// Static is the model cost of the selected code (metadata
	// latencies/sizes when the setup has no cost table).
	Static cost.Vector
}

// RunSuite compiles and simulates the whole workload suite on every
// backend (baselines plus synthesized, when present), validating each
// run against the gMIR interpreter. A backend that cannot select a
// function is recorded as a fallback and measured with the handwritten
// baseline's code for that function, the way LLVM falls back to
// SelectionDAG (§VIII-A).
func (s *Setup) RunSuite(scale int) ([]Row, error) {
	backends := append([]*isel.Backend(nil), s.Baselines...)
	if s.Synth != nil {
		backends = append(backends, s.Synth)
	}
	if s.SynthOpt != nil {
		backends = append(backends, s.SynthOpt)
	}
	var rows []Row
	for _, w := range bench.Suite(scale) {
		// Reference result.
		refMem := gmir.NewMemory()
		if w.InitMem != nil {
			w.InitMem(refMem)
		}
		ip := &gmir.Interp{Mem: refMem}
		ref, err := ip.Run(w.Build(), w.Args...)
		if err != nil {
			return nil, fmt.Errorf("%s: interp: %w", w.Name, err)
		}
		for _, bk := range backends {
			f := w.Build()
			isel.Prepare(f, s.Name)
			mf, rep := bk.Select(f)
			row := Row{Workload: w.Name, Backend: bk.Name}
			if rep.Fallback {
				row.Fallback = true
				// Fall back to the handwritten baseline for the whole
				// function.
				f2 := w.Build()
				isel.Prepare(f2, s.Name)
				mf, rep = s.Handwritten.Select(f2)
				if rep.Fallback {
					return nil, fmt.Errorf("%s: even baseline fell back: %s", w.Name, rep.FallbackReason)
				}
			}
			if tot := rep.RuleInsts + rep.HookInsts; tot > 0 && !row.Fallback {
				row.HookPct = 100 * float64(rep.HookInsts) / float64(tot)
			}
			mem := gmir.NewMemory()
			if w.InitMem != nil {
				w.InitMem(mem)
			}
			m := &sim.Machine{Mem: mem, Model: s.Model}
			res, err := m.Run(mf, w.Args)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: sim: %w", w.Name, bk.Name, err)
			}
			if sim.Adjust(res.Ret, 64) != ref {
				return nil, fmt.Errorf("%s/%s: checksum %v, want %v", w.Name, bk.Name, res.Ret, ref)
			}
			row.Cycles = res.Cycles
			row.Insts = res.Insts
			row.Size = mf.BinarySize()
			row.Checksum = res.Ret
			row.Static = cost.StaticOf(mf, s.Model)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Normalized returns, per workload, each backend's cycles normalized to
// the named reference backend — the presentation of Figs. 9 and 11.
func Normalized(rows []Row, refBackend string) map[string]map[string]float64 {
	ref := map[string]int64{}
	for _, r := range rows {
		if r.Backend == refBackend {
			ref[r.Workload] = r.Cycles
		}
	}
	out := map[string]map[string]float64{}
	for _, r := range rows {
		if ref[r.Workload] == 0 {
			continue
		}
		if out[r.Workload] == nil {
			out[r.Workload] = map[string]float64{}
		}
		out[r.Workload][r.Backend] = float64(r.Cycles) / float64(ref[r.Workload])
	}
	return out
}

// GeoMean computes the geometric mean of one backend's normalized
// runtimes across workloads.
func GeoMean(norm map[string]map[string]float64, backend string) float64 {
	prod := 1.0
	n := 0
	for _, per := range norm {
		if v, ok := per[backend]; ok && v > 0 {
			prod *= v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}

// TableII renders the synthesis-time breakdown.
func (s *Setup) TableII(lib *rules.Library) string {
	st := s.Synther.Stats
	out := fmt.Sprintf("Table II analog — %s synthesis breakdown\n", s.Name)
	out += fmt.Sprintf("  Instruction Generation  %8d instr. seq. %12v\n", st.Sequences, st.InstrGenTime.Round(time.Millisecond))
	out += fmt.Sprintf("    Canonicalize          %25v\n", st.CanonTime.Round(time.Millisecond))
	out += fmt.Sprintf("    SMT Test Eval.        %25v\n", st.EvalTime.Round(time.Millisecond))
	out += fmt.Sprintf("    Index Insert          %25v\n", st.InsertTime.Round(time.Millisecond))
	out += fmt.Sprintf("  Pattern Generation      %8d patterns\n", st.Patterns)
	w := s.Synther.Cfg.Workers
	if w < 1 {
		w = 1
	}
	perThread := func(d time.Duration) time.Duration {
		return (d / time.Duration(w)).Round(time.Millisecond)
	}
	out += fmt.Sprintf("  Lookup (parallel)       %8d rules %17v wall\n", lib.Len(), st.LookupTime.Round(time.Millisecond))
	out += fmt.Sprintf("    Index Lookup          %8d rules %17v cpu/thread\n", st.IndexRules, perThread(st.IndexLookupT))
	out += fmt.Sprintf("    SMT Test Eval.        %25v cpu/thread\n", perThread(st.ProbeTime))
	out += fmt.Sprintf("    SMT Time              %8d rules %17v cpu/thread (%d queries, %d timeouts)\n",
		st.SMTRules, perThread(st.SMTTime), st.SMTQueries, st.SMTTimeouts)
	return out
}

// FormatRows renders rows grouped by workload.
func FormatRows(rows []Row) string {
	byWorkload := map[string][]Row{}
	var names []string
	for _, r := range rows {
		if len(byWorkload[r.Workload]) == 0 {
			names = append(names, r.Workload)
		}
		byWorkload[r.Workload] = append(byWorkload[r.Workload], r)
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		out += n + ":\n"
		for _, r := range byWorkload[n] {
			fb := ""
			if r.Fallback {
				fb = "  [FALLBACK]"
			}
			out += fmt.Sprintf("  %-14s cycles=%-10d insts=%-10d size=%-6d%s\n",
				r.Backend, r.Cycles, r.Insts, r.Size, fb)
		}
	}
	return out
}
