package harness

import (
	"strings"
	"testing"

	"iselgen/internal/core"
)

// The harness tests run a scaled-down synthesis (capped pattern budget
// and pair bases) so the whole evaluation path stays fast in CI.
func quickSetup(t *testing.T, mk func() (*Setup, error)) *Setup {
	t.Helper()
	s, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.TestInputs = 48
	s.Synthesize(cfg, 0)
	return s
}

func TestCorpusPatternsContainSeeds(t *testing.T) {
	pats := CorpusPatterns("aarch64", 0)
	if len(pats) < 300 {
		t.Errorf("corpus+seeds = %d patterns", len(pats))
	}
	// Budget truncates the union.
	small := CorpusPatterns("aarch64", 25)
	if len(small) != 25 {
		t.Errorf("budgeted corpus = %d", len(small))
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, p := range pats {
		if seen[p.Key()] {
			t.Fatalf("duplicate pattern %s", p)
		}
		seen[p.Key()] = true
	}
}

func TestSeedPatternsWellFormed(t *testing.T) {
	for _, p := range SeedPatterns() {
		if p.Size() < 1 {
			t.Errorf("empty pattern %s", p)
		}
	}
}

func TestEndToEndRISCV(t *testing.T) {
	s := quickSetup(t, NewRISCV)
	if s.SynthLib.Len() < 40 {
		t.Errorf("synthesized only %d rules", s.SynthLib.Len())
	}
	rows, err := s.RunSuite(1)
	if err != nil {
		t.Fatal(err)
	}
	// 9 workloads × 3 backends.
	if len(rows) != 27 {
		t.Errorf("rows = %d", len(rows))
	}
	norm := Normalized(rows, "selectiondag")
	g := GeoMean(norm, "synth")
	if g < 0.8 || g > 1.2 {
		t.Errorf("synth geomean %.3f outside the paper's shape", g)
	}
	// Reports render.
	if out := TableIII(rows); !strings.Contains(out, "total") {
		t.Error("TableIII malformed")
	}
	if out := SizeTable(rows); !strings.Contains(out, "size ratio") {
		t.Error("SizeTable malformed")
	}
	if out := Fig6(s, s.SynthLib); !strings.Contains(out, "sequence length") {
		t.Error("Fig6 malformed")
	}
	if out := s.TableII(s.SynthLib); !strings.Contains(out, "Index Lookup") {
		t.Error("TableII malformed")
	}
}

func TestExtraSequencesRISCV(t *testing.T) {
	s, err := NewRISCV()
	if err != nil {
		t.Fatal(err)
	}
	fn := ExtraSequences("riscv")
	if fn == nil {
		t.Fatal("no extras for riscv")
	}
	seqs := fn(s.B, s.ISA)
	if len(seqs) < 5 {
		t.Fatalf("extras = %d", len(seqs))
	}
	for _, seq := range seqs {
		if seq.Len() != 3 {
			t.Errorf("%s has length %d, want 3", seq, seq.Len())
		}
		if len(seq.FixedImms) != 2 {
			t.Errorf("%s fixed imms = %d", seq, len(seq.FixedImms))
		}
	}
	if ExtraSequences("aarch64") != nil {
		t.Error("unexpected aarch64 extras")
	}
}

func TestGeoMean(t *testing.T) {
	norm := map[string]map[string]float64{
		"a": {"x": 2.0},
		"b": {"x": 0.5},
	}
	if g := GeoMean(norm, "x"); g < 0.999 || g > 1.001 {
		t.Errorf("geomean = %f", g)
	}
	if g := GeoMean(norm, "missing"); g != 0 {
		t.Errorf("missing backend geomean = %f", g)
	}
}

// With a cost model configured, Synthesize stamps the library, builds
// the "synthopt" backend, and RunSuite measures it — never statically
// worse than the greedy synthesized backend on any workload.
func TestSynthOptRowWithCostModel(t *testing.T) {
	s, err := NewRISCV()
	if err != nil {
		t.Fatal(err)
	}
	model, err := CostModel("riscv")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.TestInputs = 48
	cfg.CostModel = model
	lib := s.Synthesize(cfg, 80)
	if s.SynthOpt == nil || s.SynthOpt.Name != "synthopt" {
		t.Fatal("no synthopt backend despite cost model")
	}
	stamped := 0
	for _, r := range lib.Rules {
		if !r.CostV.IsZero() {
			stamped++
		}
	}
	if stamped != lib.Len() {
		t.Errorf("only %d/%d rules cost-stamped", stamped, lib.Len())
	}
	rows, err := s.RunSuite(1)
	if err != nil {
		t.Fatal(err)
	}
	static := map[string]map[string]Row{} // workload -> backend -> row
	for _, r := range rows {
		if static[r.Workload] == nil {
			static[r.Workload] = map[string]Row{}
		}
		static[r.Workload][r.Backend] = r
	}
	checked := 0
	for w, per := range static {
		g, okG := per["synth"]
		o, okO := per["synthopt"]
		if !okG || !okO {
			t.Fatalf("%s: missing synth/synthopt rows", w)
		}
		if g.Static.Less(o.Static) {
			t.Errorf("%s: optimal statically worse: %v vs greedy %v", w, o.Static, g.Static)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no workloads compared")
	}
	if _, err := CostModel("nope"); err == nil {
		t.Error("unknown target accepted")
	}
}
