// Package rules defines synthesized instruction selection rules: an IR
// pattern, a matched instruction sequence, the operand correspondence
// between them, and the immediate constraints discovered during
// unification or SMT search (paper §V-A2, §VI-A). It also implements the
// paper's cost metric and the TableGen-flavoured textual emission of
// Listing 1.
package rules

import (
	"fmt"
	"sort"
	"strings"

	"iselgen/internal/bv"
	"iselgen/internal/cost"
	"iselgen/internal/isa"
	"iselgen/internal/pattern"
	"iselgen/internal/term"
)

// Embed describes how an IR constant embeds into a narrower ISA
// immediate: value = ext(e) << Shift, where ext is zero- or
// sign-extension to the IR width. A rule with an Embed applies only to
// constants in the image of the embedding (checked by Decode at
// selection time) — the representability constraints of §V-A2.
type Embed struct {
	Width  int  // ISA immediate width
	Signed bool // sign-extended embedding
	Shift  int  // scale (log2): scaled addressing / shifted immediates
}

// Decode returns the ISA immediate operand encoding v, and whether v is
// representable under the embedding.
func (em Embed) Decode(v bv.BV) (bv.BV, bool) {
	shifted := v.LShrN(uint(em.Shift))
	if em.Width > shifted.W() {
		return bv.BV{}, false
	}
	e := shifted.Trunc(em.Width)
	var back bv.BV
	if em.Signed {
		back = e.SExt(v.W())
	} else {
		back = e.ZExt(v.W())
	}
	back = back.ShlN(uint(em.Shift))
	if back != v {
		return bv.BV{}, false
	}
	return e, true
}

// Term builds embed(e) as a term of the given width, for verification
// queries: the IR pattern's immediate variable is substituted by this
// term over the ISA immediate variable e.
func (em Embed) Term(b *term.Builder, e *term.Term, width int) *term.Term {
	var t *term.Term
	if em.Signed {
		t = b.SExt(width, e)
	} else {
		t = b.ZExt(width, e)
	}
	if em.Shift != 0 {
		t = b.Shl(t, b.Const(width, uint64(em.Shift)))
	}
	return t
}

func (em Embed) String() string {
	s := "zext"
	if em.Signed {
		s = "sext"
	}
	if em.Shift != 0 {
		return fmt.Sprintf("%s%d_shl%d", s, em.Width, em.Shift)
	}
	return fmt.Sprintf("%s%d", s, em.Width)
}

// SourceKind says where an ISA operand's value comes from at selection
// time.
type SourceKind int

// Operand source kinds.
const (
	SrcLeaf  SourceKind = iota // a pattern leaf (register or immediate)
	SrcConst                   // a fixed constant (e.g. an immediate bound to zero)
)

// OperandSource maps one sequence input to its origin.
type OperandSource struct {
	Kind  SourceKind
	Leaf  int    // pattern leaf index (SrcLeaf)
	Embed *Embed // for immediate leaves with a representability constraint
	Const bv.BV  // SrcConst value
}

// Rule is one synthesized (or manual) instruction selection rule.
type Rule struct {
	Pattern  *pattern.Pattern
	Seq      *isa.Sequence
	Operands []OperandSource // parallel to Seq.Inputs
	// LeafConsts constrains immediate leaves to exact constant values
	// (e.g. the xor-with-minus-one of a BIC pattern); keyed by leaf index.
	LeafConsts map[int]bv.BV
	// Source records the discovery path: "index", "smt", or "manual"
	// (§VIII: manual rules cover operations outside the synthesis scope).
	// Together with Prov it forms the rule's provenance: Source is the
	// proof origin, Prov the facts the proof depends on.
	Source string
	// Prov lists, per supporting instruction, the content fingerprint its
	// semantics had when the rule was established (name-sorted). Stamped
	// by Library.Add; the incremental planner reuses a rule only if every
	// supporting fingerprint is unchanged in the new spec.
	Prov []InstFP
	// CostV is the model cost of the rule's sequence under the cost table
	// the library was synthesized with (latency cycles, encoding bytes).
	// Stamped by Library.Add when the library carries a Model, preserved
	// verbatim across save/load; zero means "no model cost recorded" and
	// every consumer falls back to the legacy operand-count metric.
	CostV cost.Vector
}

// Cost is the paper's metric: total input operands over the sequence.
func (r *Rule) Cost() int { return r.Seq.Cost() }

// EffCost is the rule's effective cost vector: the model-stamped CostV
// when present, else the legacy operand-count metric replicated into
// both components. Within one library the two never mix scales in a
// comparison-relevant way: either the library has a Model (every rule
// stamped on Add) or it has none (every comparison is legacy-vs-legacy).
func (r *Rule) EffCost() cost.Vector {
	if !r.CostV.IsZero() {
		return r.CostV
	}
	c := int64(r.Seq.Cost())
	return cost.Vector{Latency: c, Size: c}
}

// String renders the rule in the TableGen-flavoured form of Listing 1.
func (r *Rule) String() string {
	var sb strings.Builder
	sb.WriteString("def : GeneratedPattern<\n  ")
	sb.WriteString(r.Pattern.String())
	sb.WriteString(",\n  (")
	for i, inst := range r.Seq.Insts {
		if i > 0 {
			sb.WriteString(" ; ")
		}
		sb.WriteString(inst.Name)
	}
	for i, src := range r.Operands {
		if i < len(r.Seq.Inputs) {
			sb.WriteByte(' ')
		}
		switch src.Kind {
		case SrcLeaf:
			if src.Embed != nil {
				fmt.Fprintf(&sb, "(%s $p%d)", src.Embed, src.Leaf)
			} else {
				fmt.Fprintf(&sb, "$p%d", src.Leaf)
			}
		case SrcConst:
			fmt.Fprintf(&sb, "%s", src.Const)
		}
	}
	sb.WriteString(")>;")
	return sb.String()
}

// RootKey identifies the pattern root shape for selector dispatch.
type RootKey struct {
	Op      int // gmir.Opcode
	Bits    int
	Pred    int
	MemBits int
}

// KeyOf computes the dispatch key of a pattern.
func KeyOf(p *pattern.Pattern) RootKey {
	return RootKey{
		Op:      int(p.Root.Op),
		Bits:    p.Root.Ty.Bits,
		Pred:    int(p.Root.Pred),
		MemBits: p.Root.MemBits,
	}
}

// Library is a set of rules indexed for greedy largest-pattern-first
// selection (paper §II-B). Multiple rules may exist per pattern with
// different immediate constraints; the selector tries them
// cheapest-first and falls through on unrepresentable constants.
type Library struct {
	Target  string
	Rules   []*Rule
	byRoot  map[RootKey][]*Rule
	byKey   map[string][]*Rule // cost-sorted rules per pattern key
	sortedQ bool
	// Model, when set, is the cost table rules are ranked under: Add
	// stamps each inserted rule's CostV from it. A nil Model keeps the
	// paper's operand-count metric everywhere (legacy behavior).
	Model *cost.Table
}

// maxRulesPerPattern caps constraint-variant chains per pattern.
const maxRulesPerPattern = 8

// NewLibrary returns an empty rule library.
func NewLibrary(target string) *Library {
	return &Library{Target: target, byRoot: map[RootKey][]*Rule{}, byKey: map[string][]*Rule{}}
}

// Add inserts a rule, keeping the per-pattern chain cost-sorted and
// dropping exact duplicates (same sequence and operand shape). Rules are
// stamped with their provenance (supporting instruction fingerprints) on
// insertion, so every library — synthesized, manual, or loaded — carries
// the reuse metadata the incremental planner needs.
func (l *Library) Add(r *Rule) {
	if r.Prov == nil {
		r.Prov = SupportOf(r.Seq)
	}
	if l.Model != nil && r.CostV.IsZero() {
		r.CostV = l.Model.SeqVector(r.Seq)
	}
	key := r.Pattern.Key()
	chain := l.byKey[key]
	sig := ruleSig(r)
	for _, old := range chain {
		if ruleSig(old) == sig {
			return
		}
	}
	if len(chain) >= maxRulesPerPattern {
		return
	}
	// Insertion point: effective cost, then content signature — equal-cost
	// rules land in the same slot whatever order Add saw them in, so
	// Lookup's winner never depends on worker scheduling.
	pos := len(chain)
	rc := r.EffCost()
	for i, old := range chain {
		oc := old.EffCost()
		if rc.Less(oc) || (rc == oc && sig < ruleSig(old)) {
			pos = i
			break
		}
	}
	chain = append(chain, nil)
	copy(chain[pos+1:], chain[pos:])
	chain[pos] = r
	l.byKey[key] = chain
	l.Rules = append(l.Rules, r)
	rk := KeyOf(r.Pattern)
	l.byRoot[rk] = append(l.byRoot[rk], r)
	l.sortedQ = false
}

func ruleSig(r *Rule) string {
	var sb strings.Builder
	sb.WriteString(r.Seq.String())
	for leaf, v := range r.LeafConsts {
		fmt.Fprintf(&sb, "|k%d=%s", leaf, v)
	}
	for _, op := range r.Operands {
		switch op.Kind {
		case SrcLeaf:
			fmt.Fprintf(&sb, "|l%d", op.Leaf)
			if op.Embed != nil {
				fmt.Fprintf(&sb, ":%s", op.Embed)
			}
		case SrcConst:
			fmt.Fprintf(&sb, "|c%s", op.Const)
		}
	}
	return sb.String()
}

// RuleFP computes the content-addressed identity of a single rule: the
// SHA-256 over its pattern key and a deterministic rendering of its
// sequence, bound constants (key-sorted — ruleSig's map order is fine
// for intra-process dedupe but a fingerprint must be stable across
// processes), and operand sources. The service's provenance endpoint
// (/v1/rules/{fingerprint}/why) addresses rules by this value.
func RuleFP(r *Rule) string {
	parts := []string{"rule-v1", r.Pattern.Key(), r.Seq.String()}
	if len(r.LeafConsts) > 0 {
		ks := make([]int, 0, len(r.LeafConsts))
		for leaf := range r.LeafConsts {
			ks = append(ks, leaf)
		}
		sort.Ints(ks)
		for _, leaf := range ks {
			parts = append(parts, fmt.Sprintf("k%d=%s", leaf, r.LeafConsts[leaf]))
		}
	}
	for _, op := range r.Operands {
		switch op.Kind {
		case SrcLeaf:
			s := fmt.Sprintf("l%d", op.Leaf)
			if op.Embed != nil {
				s += ":" + op.Embed.String()
			}
			parts = append(parts, s)
		case SrcConst:
			parts = append(parts, fmt.Sprintf("c%s", op.Const))
		}
	}
	return Fingerprint(parts...)
}

// Lookup returns the cheapest rule for a pattern key, or nil.
func (l *Library) Lookup(key string) *Rule {
	if chain := l.byKey[key]; len(chain) > 0 {
		return chain[0]
	}
	return nil
}

// LookupAll returns the cost-sorted rule chain for a pattern key.
func (l *Library) LookupAll(key string) []*Rule { return l.byKey[key] }

// Candidates returns rules whose pattern root matches the key, ordered
// largest-pattern-first (greedy matching), ties by cost, then by number
// of folded immediates (an immediate operand avoids materializing the
// constant into a register).
func (l *Library) Candidates(k RootKey) []*Rule {
	if !l.sortedQ {
		l.Freeze()
	}
	return l.byRoot[k]
}

// Freeze sorts every per-root candidate chain into greedy dispatch
// order. Candidates does this lazily on first use, which mutates the
// library; a caller that will serve a library to concurrent selectors
// (the selection service) must Freeze it once after the last Add, after
// which Candidates is a pure read and safe to call from many goroutines.
func (l *Library) Freeze() {
	for _, rs := range l.byRoot {
		sort.Slice(rs, func(i, j int) bool {
			si, sj := rs[i].Pattern.Size(), rs[j].Pattern.Size()
			if si != sj {
				return si > sj
			}
			if ci, cj := rs[i].EffCost(), rs[j].EffCost(); ci != cj {
				return ci.Less(cj)
			}
			if ii, ij := immLeafCount(rs[i]), immLeafCount(rs[j]); ii != ij {
				return ii > ij
			}
			// Full content order last: equal-rank rules dispatch in a
			// stable order regardless of synthesis worker scheduling.
			if ki, kj := rs[i].Pattern.Key(), rs[j].Pattern.Key(); ki != kj {
				return ki < kj
			}
			return ruleSig(rs[i]) < ruleSig(rs[j])
		})
	}
	l.sortedQ = true
}

func immLeafCount(r *Rule) int {
	n := 0
	for _, l := range r.Pattern.Leaves() {
		if !l.LeafReg {
			n++
		}
	}
	return n
}

// Len returns the number of rules.
func (l *Library) Len() int { return len(l.Rules) }

// Emit renders the whole library as TableGen-flavoured text.
func (l *Library) Emit() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// Generated instruction selection rules for %s: %d rules.\n",
		l.Target, len(l.Rules))
	for _, r := range l.Rules {
		fmt.Fprintf(&sb, "// cost %d", r.Cost())
		if !r.CostV.IsZero() {
			fmt.Fprintf(&sb, ", model %s", r.CostV)
		}
		fmt.Fprintf(&sb, ", source %s\n%s\n", r.Source, r)
	}
	return sb.String()
}

// Stats summarizes the library composition (used by the Fig. 6 harness).
type Stats struct {
	Rules          int
	BySource       map[string]int
	BySeqLen       map[int]int
	ByPatternSize  map[int]int
	RulesWithImmCs int
}

// Summarize computes library statistics.
func (l *Library) Summarize() Stats {
	s := Stats{
		Rules:         len(l.Rules),
		BySource:      map[string]int{},
		BySeqLen:      map[int]int{},
		ByPatternSize: map[int]int{},
	}
	for _, r := range l.Rules {
		s.BySource[r.Source]++
		s.BySeqLen[r.Seq.Len()]++
		s.ByPatternSize[r.Pattern.Size()]++
		for _, op := range r.Operands {
			if op.Kind == SrcLeaf && op.Embed != nil {
				s.RulesWithImmCs++
				break
			}
		}
	}
	return s
}
