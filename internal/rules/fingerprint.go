package rules

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Fingerprint computes the content-addressed identity of a rule library:
// the SHA-256 over its inputs — target spec text and synthesis
// configuration knobs (§VI-A makes libraries persistable artifacts; the
// fingerprint is the cache key that makes re-synthesis avoidable). Each
// part is length-prefixed before hashing so that concatenation ambiguity
// cannot alias two different input sets ("ab","c" vs "a","bc").
func Fingerprint(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}
