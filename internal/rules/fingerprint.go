package rules

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"iselgen/internal/isa"
	"iselgen/internal/term"
)

// Fingerprint computes the content-addressed identity of a rule library:
// the SHA-256 over its inputs — target spec text and synthesis
// configuration knobs (§VI-A makes libraries persistable artifacts; the
// fingerprint is the cache key that makes re-synthesis avoidable). Each
// part is length-prefixed before hashing so that concatenation ambiguity
// cannot alias two different input sets ("ab","c" vs "a","bc").
func Fingerprint(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// instFPCache memoizes InstFingerprint per *isa.Instruction. Instructions
// are immutable once loaded and pointer-unique per target load, so the
// pointer is a sound cache key; the cache makes provenance stamping in
// Library.Add (one SupportOf per rule) effectively free.
var instFPCache sync.Map // *isa.Instruction -> string

// InstFingerprint computes the content identity of one instruction: the
// SHA-256 over its name, operand signature, and *symbolically executed*
// effect terms. Hashing the effect terms rather than the spec text makes
// whitespace, comment, and instruction-reordering edits free — only a
// semantic change to the instruction produces a new fingerprint. The
// rendering of each effect term is the deterministic s-expression form of
// term.Term.String, which is independent of builder identity.
func InstFingerprint(inst *isa.Instruction) string {
	if fp, ok := instFPCache.Load(inst); ok {
		return fp.(string)
	}
	parts := []string{"inst", inst.Name}
	for _, op := range inst.Operands {
		parts = append(parts, fmt.Sprintf("op|%s|%d|%d", op.Name, op.Kind, op.Width))
	}
	for _, e := range inst.Effects {
		parts = append(parts, fmt.Sprintf("eff|%d|%s|%s", e.Kind, e.Dest, canonRender(e.T)))
	}
	fp := Fingerprint(parts...)
	instFPCache.Store(inst, fp)
	return fp
}

// canonRender renders a term like term.Term.String but sorts the operands
// of commutative operations lexicographically by their rendering. The
// builder orders commutative operands by hash-cons ID, which depends on
// construction history — two builders loading the same spec after
// different preceding work would disagree. Fingerprints must identify
// *content*, so the rendering has to be builder-independent.
func canonRender(t *term.Term) string {
	switch t.Op {
	case term.Const:
		return t.CVal.String()
	case term.Var:
		return t.Name
	case term.Extract:
		return fmt.Sprintf("((_ extract %d %d) %s)", t.Aux0, t.Aux1, canonRender(t.Args[0]))
	case term.ZExt, term.SExt:
		return fmt.Sprintf("((_ %s %d) %s)", t.Op, t.W()-t.Args[0].W(), canonRender(t.Args[0]))
	case term.Load:
		return fmt.Sprintf("(load%d %s)", t.Aux0, canonRender(t.Args[0]))
	case term.Store:
		return fmt.Sprintf("(store%d %s %s)", t.Aux0, canonRender(t.Args[0]), canonRender(t.Args[1]))
	default:
		args := make([]string, len(t.Args))
		for i, a := range t.Args {
			args[i] = canonRender(a)
		}
		if t.Op.IsCommutative() && len(args) == 2 && args[1] < args[0] {
			args[0], args[1] = args[1], args[0]
		}
		return "(" + t.Op.String() + " " + strings.Join(args, " ") + ")"
	}
}

// InstFP names one supporting instruction and its content fingerprint.
type InstFP struct {
	Name string
	FP   string
}

// SupportOf computes a sequence's provenance: the deduplicated,
// name-sorted fingerprints of every instruction the sequence uses. A rule
// proved against these instructions remains valid in any spec where all
// of them are semantically unchanged — the reuse criterion of the
// incremental planner.
func SupportOf(seq *isa.Sequence) []InstFP {
	seen := map[string]bool{}
	out := make([]InstFP, 0, len(seq.Insts))
	for _, inst := range seq.Insts {
		if seen[inst.Name] {
			continue
		}
		seen[inst.Name] = true
		out = append(out, InstFP{Name: inst.Name, FP: InstFingerprint(inst)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
