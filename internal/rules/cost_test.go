package rules

import (
	"testing"

	"iselgen/internal/cost"
	"iselgen/internal/gmir"
	"iselgen/internal/isa"
	"iselgen/internal/pattern"
	"iselgen/internal/term"
)

// tieTarget has two distinct 2-operand instructions (equal legacy cost,
// equal pattern) plus a 1-operand instruction with a long model latency,
// so tests can separate tie-breaking from model ranking.
func tieTarget(t *testing.T) (*term.Builder, *isa.Target) {
	t.Helper()
	b := term.NewBuilder()
	src := `inst ALPHA(rn: reg64, rm: reg64) { rd = rn + rm; }
inst BETA(rn: reg64, rm: reg64) { rd = rn | rm; }
inst SLOW(rn: reg64) { rd = rn; }`
	tgt, err := isa.LoadTarget(b, "m", src, map[string]int{"SLOW": 20}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return b, tgt
}

func tieRule(b *term.Builder, tgt *isa.Target, name string) *Rule {
	inst := tgt.ByName(name)
	seq := isa.Single(b, inst)
	p := pattern.New(pattern.Op(gmir.GAdd, gmir.S64,
		pattern.Leaf(gmir.S64), pattern.Leaf(gmir.S64)))
	var ops []OperandSource
	for i := range inst.Operands {
		ops = append(ops, OperandSource{Kind: SrcLeaf, Leaf: i})
	}
	return &Rule{Pattern: p, Seq: seq, Operands: ops, Source: "manual"}
}

// Equal-cost rules must produce the same Lookup winner and the same
// LookupAll order whatever order Add saw them in — otherwise the library
// (and everything cached from it) depends on synthesis worker timing.
func TestAddTieBreakDeterministic(t *testing.T) {
	b, tgt := tieTarget(t)
	mk := func(names ...string) *Library {
		lib := NewLibrary("m")
		for _, n := range names {
			lib.Add(tieRule(b, tgt, n))
		}
		return lib
	}
	fwd := mk("ALPHA", "BETA")
	rev := mk("BETA", "ALPHA")
	key := tieRule(b, tgt, "ALPHA").Pattern.Key()
	cf, cr := fwd.LookupAll(key), rev.LookupAll(key)
	if len(cf) != 2 || len(cr) != 2 {
		t.Fatalf("chains = %d, %d rules", len(cf), len(cr))
	}
	for i := range cf {
		if ruleSig(cf[i]) != ruleSig(cr[i]) {
			t.Fatalf("chain position %d differs across insertion orders: %s vs %s",
				i, cf[i].Seq, cr[i].Seq)
		}
	}
	if ruleSig(fwd.Lookup(key)) != ruleSig(rev.Lookup(key)) {
		t.Error("Lookup winner depends on insertion order")
	}
}

// Candidates (the greedy dispatch order) must be insertion-order
// independent too: Freeze's sort ends in a full content tie-break.
func TestFreezeTieBreakDeterministic(t *testing.T) {
	b, tgt := tieTarget(t)
	mk := func(names ...string) *Library {
		lib := NewLibrary("m")
		for _, n := range names {
			lib.Add(tieRule(b, tgt, n))
		}
		lib.Freeze()
		return lib
	}
	fwd := mk("ALPHA", "BETA")
	rev := mk("BETA", "ALPHA")
	k := KeyOf(tieRule(b, tgt, "ALPHA").Pattern)
	cf, cr := fwd.Candidates(k), rev.Candidates(k)
	if len(cf) != len(cr) {
		t.Fatalf("candidate counts differ: %d vs %d", len(cf), len(cr))
	}
	for i := range cf {
		if ruleSig(cf[i]) != ruleSig(cr[i]) {
			t.Fatalf("candidate %d differs across insertion orders", i)
		}
	}
}

// A library with a Model stamps CostV on Add and ranks chains by model
// cost: the 1-operand SLOW instruction loses to a 2-operand 1-cycle one,
// inverting the legacy operand-count order.
func TestModelStampingAndRanking(t *testing.T) {
	b, tgt := tieTarget(t)
	lib := NewLibrary("m")
	lib.Model = cost.FromTarget(tgt)
	slow := tieRule(b, tgt, "SLOW")
	slow.Operands = slow.Operands[:1]
	fast := tieRule(b, tgt, "ALPHA")
	lib.Add(slow)
	lib.Add(fast)
	if slow.CostV.Latency != 20 || fast.CostV.Latency != 1 {
		t.Fatalf("CostV stamping: slow=%v fast=%v", slow.CostV, fast.CostV)
	}
	key := fast.Pattern.Key()
	if got := lib.Lookup(key); got != fast {
		t.Errorf("model ranking: Lookup = %s, want ALPHA", got.Seq)
	}
	// Legacy library (no model): operand count wins, SLOW first.
	legacy := NewLibrary("m")
	legacy.Add(tieRule(b, tgt, "ALPHA"))
	sl := tieRule(b, tgt, "SLOW")
	sl.Operands = sl.Operands[:1]
	legacy.Add(sl)
	if got := legacy.Lookup(key); got.Seq.Insts[0].Name != "SLOW" {
		t.Errorf("legacy ranking: Lookup = %s, want SLOW", got.Seq)
	}
	if !legacy.Lookup(key).CostV.IsZero() {
		t.Error("legacy library must not stamp CostV")
	}
}

// EffCost falls back to the operand count when no model cost was
// stamped, so mixed comparisons stay well-defined.
func TestEffCostFallback(t *testing.T) {
	b, tgt := tieTarget(t)
	r := tieRule(b, tgt, "ALPHA")
	if got := r.EffCost(); got != (cost.Vector{Latency: 2, Size: 2}) {
		t.Errorf("legacy EffCost = %v", got)
	}
	r.CostV = cost.Vector{Latency: 5, Size: 8}
	if got := r.EffCost(); got != r.CostV {
		t.Errorf("stamped EffCost = %v", got)
	}
}
