package rules

import (
	"strings"
	"testing"
	"testing/quick"

	"iselgen/internal/bv"
	"iselgen/internal/gmir"
	"iselgen/internal/isa"
	"iselgen/internal/pattern"
	"iselgen/internal/term"
)

func TestEmbedDecode(t *testing.T) {
	z12 := Embed{Width: 12}
	if e, ok := z12.Decode(bv.New(64, 4095)); !ok || e.Lo != 4095 || e.W() != 12 {
		t.Errorf("zext12(4095) = %v, %v", e, ok)
	}
	if _, ok := z12.Decode(bv.New(64, 4096)); ok {
		t.Error("4096 fits zext12")
	}
	s9 := Embed{Width: 9, Signed: true}
	if e, ok := s9.Decode(bv.NewInt(64, -256)); !ok || e.Lo != 0x100 {
		t.Errorf("sext9(-256) = %v, %v", e, ok)
	}
	if _, ok := s9.Decode(bv.New(64, 256)); ok {
		t.Error("256 fits sext9")
	}
	sc := Embed{Width: 12, Shift: 3}
	if e, ok := sc.Decode(bv.New(64, 8*100)); !ok || e.Lo != 100 {
		t.Errorf("scaled(800) = %v, %v", e, ok)
	}
	if _, ok := sc.Decode(bv.New(64, 12)); ok {
		t.Error("unaligned 12 fits scale-8")
	}
}

// Property: Decode is exactly the inverse image of the embedding.
func TestEmbedDecodeQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 3000}
	for _, em := range []Embed{{Width: 12}, {Width: 9, Signed: true}, {Width: 12, Shift: 3}, {Width: 16, Signed: true, Shift: 1}} {
		em := em
		err := quick.Check(func(raw uint64) bool {
			v := bv.New(64, raw)
			e, ok := em.Decode(v)
			if !ok {
				return true
			}
			// Re-embed and compare.
			var back bv.BV
			if em.Signed {
				back = e.SExt(64)
			} else {
				back = e.ZExt(64)
			}
			return back.ShlN(uint(em.Shift)) == v
		}, cfg)
		if err != nil {
			t.Errorf("%v: %v", em, err)
		}
		// Every in-image value decodes.
		err = quick.Check(func(eRaw uint16) bool {
			e := bv.New(em.Width, uint64(eRaw))
			var v bv.BV
			if em.Signed {
				v = e.SExt(64)
			} else {
				v = e.ZExt(64)
			}
			v = v.ShlN(uint(em.Shift))
			got, ok := em.Decode(v)
			return ok && got == e
		}, cfg)
		if err != nil {
			t.Errorf("%v image: %v", em, err)
		}
	}
}

func TestEmbedTerm(t *testing.T) {
	b := term.NewBuilder()
	e := b.Imm("e", 12)
	em := Embed{Width: 12, Shift: 3}
	tt := em.Term(b, e, 64)
	env := term.NewEnv()
	env.Bind("e", bv.New(12, 5))
	if got := tt.Eval(env); got.Lo != 40 {
		t.Errorf("embed term eval = %d", got.Lo)
	}
	emS := Embed{Width: 12, Signed: true}
	ts := emS.Term(b, e, 64)
	env.Bind("e", bv.NewInt(12, -1))
	if got := ts.Eval(env); !got.IsOnes() {
		t.Errorf("signed embed term = %v", got)
	}
}

func mkRule(t *testing.T, cost int) *Rule {
	t.Helper()
	b := term.NewBuilder()
	src := `inst A1(rn: reg64) { rd = rn; }
inst A2(rn: reg64, rm: reg64) { rd = rn + rm; }
inst A3(rn: reg64, rm: reg64, rk: reg64) { rd = rn + rm + rk; }`
	tgt, err := isa.LoadTarget(b, "m", src, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq := isa.Single(b, tgt.Insts[cost-1])
	p := pattern.New(pattern.Op(gmir.GAdd, gmir.S64,
		pattern.Leaf(gmir.S64), pattern.Leaf(gmir.S64)))
	var ops []OperandSource
	for i := 0; i < cost; i++ {
		ops = append(ops, OperandSource{Kind: SrcLeaf, Leaf: i % 2})
	}
	return &Rule{Pattern: p, Seq: seq, Operands: ops, Source: "manual"}
}

func TestLibraryChainsSortedByCost(t *testing.T) {
	lib := NewLibrary("t")
	r3 := mkRule(t, 3)
	r1 := mkRule(t, 1)
	r2 := mkRule(t, 2)
	lib.Add(r3)
	lib.Add(r1)
	lib.Add(r2)
	key := r1.Pattern.Key()
	chain := lib.LookupAll(key)
	if len(chain) != 3 {
		t.Fatalf("chain = %d", len(chain))
	}
	if chain[0].Cost() != 1 || chain[1].Cost() != 2 || chain[2].Cost() != 3 {
		t.Errorf("chain costs = %d,%d,%d", chain[0].Cost(), chain[1].Cost(), chain[2].Cost())
	}
	if lib.Lookup(key).Cost() != 1 {
		t.Error("Lookup not cheapest")
	}
	// Duplicate (same signature) rejected.
	lib.Add(mkRule(t, 2))
	if len(lib.LookupAll(key)) != 3 {
		t.Error("duplicate accepted")
	}
}

func TestCandidatesOrdering(t *testing.T) {
	lib := NewLibrary("t")
	small := mkRule(t, 1)
	big := mkRule(t, 2)
	// Make 'big' a larger pattern.
	big.Pattern = pattern.New(pattern.Op(gmir.GAdd, gmir.S64,
		pattern.Leaf(gmir.S64),
		pattern.Op(gmir.GShl, gmir.S64, pattern.Leaf(gmir.S64), pattern.ImmLeaf(gmir.S64))))
	lib.Add(small)
	lib.Add(big)
	cands := lib.Candidates(KeyOf(small.Pattern))
	if len(cands) != 2 || cands[0] != big {
		t.Errorf("largest-first ordering violated")
	}
}

func TestEmitFormat(t *testing.T) {
	lib := NewLibrary("t")
	r := mkRule(t, 2)
	r.Operands[1].Embed = &Embed{Width: 6}
	lib.Add(r)
	out := lib.Emit()
	for _, want := range []string{"GeneratedPattern", "G_ADD", "zext6", "cost 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Emit missing %q:\n%s", want, out)
		}
	}
	st := lib.Summarize()
	if st.Rules != 1 || st.BySource["manual"] != 1 || st.RulesWithImmCs != 1 {
		t.Errorf("summary = %+v", st)
	}
}
