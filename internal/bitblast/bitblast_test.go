package bitblast

import (
	"errors"
	"testing"

	"iselgen/internal/bv"
	"iselgen/internal/sat"
	"iselgen/internal/term"
)

// fix constrains the bits of a blasted variable to a concrete value.
func fix(b *Blaster, ls []sat.Lit, v bv.BV) {
	for i, l := range ls {
		if v.Bit(i) == 1 {
			b.S.AddClause(l)
		} else {
			b.S.AddClause(l.Flip())
		}
	}
}

// evalViaSAT blasts t, pins its variables to the values in env, solves,
// and reads the result back from the model.
func evalViaSAT(t *testing.T, tt *term.Term, env *term.Env) bv.BV {
	t.Helper()
	s := sat.New()
	b := New(s)
	out, err := b.Blast(tt)
	if err != nil {
		t.Fatalf("blast: %v", err)
	}
	for _, v := range tt.Vars() {
		fix(b, b.VarBits(v.Name, v.W()), env.Vals[v.Name])
	}
	st, model := s.SolveModel()
	if st != sat.Sat {
		t.Fatalf("pinned circuit unsat (%v)", st)
	}
	var r bv.BV
	if tt.W() <= 64 {
		r = bv.New(tt.W(), ModelValue(model, out))
	} else {
		r = bv.New128(tt.W(), ModelValue(model, out[64:]), ModelValue(model, out[:64]))
	}
	return r
}

// TestCircuitsMatchEval is the central cross-validation: for every
// operation, the bit-blasted circuit must compute exactly what term.Eval
// computes, across random inputs and widths.
func TestCircuitsMatchEval(t *testing.T) {
	rng := bv.NewRNG(7)
	type mk func(b *term.Builder, x, y *term.Term) *term.Term
	ops := map[string]mk{
		"add":  func(b *term.Builder, x, y *term.Term) *term.Term { return b.Add(x, y) },
		"sub":  func(b *term.Builder, x, y *term.Term) *term.Term { return b.Sub(x, y) },
		"mul":  func(b *term.Builder, x, y *term.Term) *term.Term { return b.Mul(x, y) },
		"udiv": func(b *term.Builder, x, y *term.Term) *term.Term { return b.UDiv(x, y) },
		"urem": func(b *term.Builder, x, y *term.Term) *term.Term { return b.URem(x, y) },
		"sdiv": func(b *term.Builder, x, y *term.Term) *term.Term { return b.SDiv(x, y) },
		"srem": func(b *term.Builder, x, y *term.Term) *term.Term { return b.SRem(x, y) },
		"neg":  func(b *term.Builder, x, y *term.Term) *term.Term { return b.Neg(x) },
		"not":  func(b *term.Builder, x, y *term.Term) *term.Term { return b.Not(x) },
		"and":  func(b *term.Builder, x, y *term.Term) *term.Term { return b.And(x, y) },
		"or":   func(b *term.Builder, x, y *term.Term) *term.Term { return b.Or(x, y) },
		"xor":  func(b *term.Builder, x, y *term.Term) *term.Term { return b.Xor(x, y) },
		"shl":  func(b *term.Builder, x, y *term.Term) *term.Term { return b.Shl(x, y) },
		"lshr": func(b *term.Builder, x, y *term.Term) *term.Term { return b.LShr(x, y) },
		"ashr": func(b *term.Builder, x, y *term.Term) *term.Term { return b.AShr(x, y) },
		"rotl": func(b *term.Builder, x, y *term.Term) *term.Term { return b.RotL(x, y) },
		"rotr": func(b *term.Builder, x, y *term.Term) *term.Term { return b.RotR(x, y) },
		"pop":  func(b *term.Builder, x, y *term.Term) *term.Term { return b.Popcount(x) },
		"clz":  func(b *term.Builder, x, y *term.Term) *term.Term { return b.Clz(x) },
		"ctz":  func(b *term.Builder, x, y *term.Term) *term.Term { return b.Ctz(x) },
		"eq":   func(b *term.Builder, x, y *term.Term) *term.Term { return b.Eq(x, y) },
		"ult":  func(b *term.Builder, x, y *term.Term) *term.Term { return b.Ult(x, y) },
		"slt":  func(b *term.Builder, x, y *term.Term) *term.Term { return b.Slt(x, y) },
		"ite": func(b *term.Builder, x, y *term.Term) *term.Term {
			return b.Ite(b.Ult(x, y), b.Add(x, y), b.Sub(x, y))
		},
		"sext": func(b *term.Builder, x, y *term.Term) *term.Term {
			return b.SExt(2*x.W(), x)
		},
		"zext": func(b *term.Builder, x, y *term.Term) *term.Term {
			return b.ZExt(2*x.W(), x)
		},
	}
	for name, f := range ops {
		for _, w := range []int{4, 8, 16} {
			bld := term.NewBuilder()
			x := bld.Reg("x", w)
			y := bld.Reg("y", w)
			tt := f(bld, x, y)
			for trial := 0; trial < 4; trial++ {
				env := term.NewEnv()
				env.Bind("x", rng.BV(w))
				env.Bind("y", rng.BV(w))
				want := tt.Eval(env)
				got := evalViaSAT(t, tt, env)
				if got != want {
					t.Errorf("%s/w%d: sat=%v eval=%v (x=%v y=%v)",
						name, w, got, want, env.Vals["x"], env.Vals["y"])
				}
			}
		}
	}
}

func TestExtractConcatWiring(t *testing.T) {
	bld := term.NewBuilder()
	x := bld.Reg("x", 16)
	y := bld.Reg("y", 8)
	tt := bld.Concat(bld.Extract(11, 4, x), y)
	env := term.NewEnv()
	env.Bind("x", bv.New(16, 0xabcd))
	env.Bind("y", bv.New(8, 0x7e))
	if got, want := evalViaSAT(t, tt, env), tt.Eval(env); got != want {
		t.Errorf("sat=%v eval=%v", got, want)
	}
}

func TestEquivalenceProof(t *testing.T) {
	// Prove x - y == x + ~y + 1 at width 16 by UNSAT of the inequality.
	bld := term.NewBuilder()
	x := bld.Reg("x", 16)
	y := bld.Reg("y", 16)
	lhs := bld.Sub(x, y)
	rhs := bld.Add(bld.Add(x, bld.Not(y)), bld.Const(16, 1))
	s := sat.New()
	b := New(s)
	lb, err := b.Blast(lhs)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Blast(rhs)
	if err != nil {
		t.Fatal(err)
	}
	b.AssertDistinct(lb, rb)
	if st := s.Solve(); st != sat.Unsat {
		t.Errorf("x-y vs x+~y+1: %v, want unsat", st)
	}
}

func TestNonEquivalenceCounterexample(t *testing.T) {
	// x + y != x - y in general: solver must find a witness.
	bld := term.NewBuilder()
	x := bld.Reg("x", 8)
	y := bld.Reg("y", 8)
	s := sat.New()
	b := New(s)
	lb, _ := b.Blast(bld.Add(x, y))
	rb, _ := b.Blast(bld.Sub(x, y))
	b.AssertDistinct(lb, rb)
	st, model := s.SolveModel()
	if st != sat.Sat {
		t.Fatalf("status %v, want sat", st)
	}
	// Check the counterexample is genuine.
	xv := bv.New(8, ModelValue(model, b.VarBits("x", 8)))
	yv := bv.New(8, ModelValue(model, b.VarBits("y", 8)))
	if xv.Add(yv) == xv.Sub(yv) {
		t.Errorf("counterexample x=%v y=%v does not separate the terms", xv, yv)
	}
}

func TestShiftEquivalenceMulPow2(t *testing.T) {
	// x << 3 == x * 8 at width 12.
	bld := term.NewBuilder()
	x := bld.Reg("x", 12)
	lhs := bld.Shl(x, bld.Const(12, 3))
	rhs := bld.Mul(x, bld.Const(12, 8))
	s := sat.New()
	b := New(s)
	lb, _ := b.Blast(lhs)
	rb, _ := b.Blast(rhs)
	b.AssertDistinct(lb, rb)
	if st := s.Solve(); st != sat.Unsat {
		t.Errorf("shl3 vs mul8: %v, want unsat", st)
	}
}

func TestStoreRejected(t *testing.T) {
	bld := term.NewBuilder()
	a := bld.Reg("a", 64)
	v := bld.Reg("v", 32)
	s := sat.New()
	b := New(s)
	if _, err := b.Blast(bld.Store(a, v)); !errors.Is(err, ErrUnsupported) {
		t.Errorf("store blast err = %v, want ErrUnsupported", err)
	}
}

func TestLoadFreshBitsShared(t *testing.T) {
	// The same load node must map to the same bits (hash-consing), so
	// load(a) - load(a) == 0 must be provable.
	bld := term.NewBuilder()
	a := bld.Reg("a", 64)
	l := bld.Load(32, a)
	diff := bld.Sub(l, bld.Load(32, a))
	if !diff.IsConst() || !diff.CVal.IsZero() {
		// Builder folding may already collapse it; if not, prove by SAT.
		s := sat.New()
		b := New(s)
		db, err := b.Blast(diff)
		if err != nil {
			t.Fatal(err)
		}
		zero := make([]sat.Lit, 32)
		for i := range zero {
			zero[i] = db[i]
		}
		s2 := sat.New()
		_ = s2
		b.AssertDistinct(db, b.constBits(32, func(int) bool { return false }))
		if st := b.S.Solve(); st != sat.Unsat {
			t.Errorf("load(a)-load(a) != 0 is %v, want unsat", st)
		}
	}
}

func TestVarWidthMismatchPanics(t *testing.T) {
	s := sat.New()
	b := New(s)
	b.VarBits("x", 8)
	defer func() {
		if recover() == nil {
			t.Error("no panic for width mismatch")
		}
	}()
	b.VarBits("x", 16)
}

func TestGateCacheSharing(t *testing.T) {
	// Blasting the same subterm twice must not grow the solver.
	bld := term.NewBuilder()
	x := bld.Reg("x", 32)
	y := bld.Reg("y", 32)
	sum := bld.Add(x, y)
	s := sat.New()
	b := New(s)
	if _, err := b.Blast(sum); err != nil {
		t.Fatal(err)
	}
	before := s.NumVars()
	if _, err := b.Blast(sum); err != nil {
		t.Fatal(err)
	}
	if s.NumVars() != before {
		t.Errorf("re-blasting grew solver: %d -> %d", before, s.NumVars())
	}
}

func TestWideWidth128(t *testing.T) {
	bld := term.NewBuilder()
	x := bld.Reg("x", 128)
	y := bld.Reg("y", 128)
	tt := bld.Add(x, y)
	env := term.NewEnv()
	env.Bind("x", bv.New128(128, 0xdeadbeef, ^uint64(0)))
	env.Bind("y", bv.New128(128, 1, 1))
	if got, want := evalViaSAT(t, tt, env), tt.Eval(env); got != want {
		t.Errorf("128-bit add: sat=%v eval=%v", got, want)
	}
}
