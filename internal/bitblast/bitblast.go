// Package bitblast lowers bitvector terms to CNF via Tseitin encoding,
// turning the sat package into a decision procedure for QF_BV — the
// reproduction's substitute for Z3's bitvector engine.
//
// Each term maps to one SAT literal per bit. Gates are deduplicated
// through a structural cache, constants are propagated eagerly, and
// word-level structure (ripple-carry adders, shift-and-add multipliers,
// barrel shifters, long-division circuits, priority encoders) is encoded
// with the textbook circuits.
//
// Load and Store terms are not handled here: the smt package substitutes
// paired loads with shared fresh variables before blasting (see
// smt.Equiv), so a Load reaching the blaster is allocated fresh
// unconstrained bits, and a Store is rejected.
package bitblast

import (
	"errors"
	"fmt"

	"iselgen/internal/sat"
	"iselgen/internal/term"
)

// ErrUnsupported reports a term that cannot be bit-blasted (Store roots
// and variable rotates of non-power-of-two widths).
var ErrUnsupported = errors.New("bitblast: unsupported operation")

// Blaster encodes terms into a sat.Solver.
type Blaster struct {
	S *sat.Solver

	lTrue  sat.Lit // literal constrained to true
	lFalse sat.Lit

	bits  map[*term.Term][]sat.Lit
	vars  map[string][]sat.Lit
	gates map[gateKey]sat.Lit
}

type gateKey struct {
	op   uint8
	x, y sat.Lit
	z    sat.Lit
}

const (
	gAnd uint8 = iota
	gOr
	gXor
	gIte
)

// New returns a Blaster over the given solver.
func New(s *sat.Solver) *Blaster {
	b := &Blaster{
		S:     s,
		bits:  make(map[*term.Term][]sat.Lit),
		vars:  make(map[string][]sat.Lit),
		gates: make(map[gateKey]sat.Lit),
	}
	v := s.NewVar()
	b.lTrue = sat.LitOf(v, false)
	b.lFalse = b.lTrue.Flip()
	s.AddClause(b.lTrue)
	return b
}

// constLit returns the literal for a constant bit.
func (b *Blaster) constLit(v bool) sat.Lit {
	if v {
		return b.lTrue
	}
	return b.lFalse
}

func (b *Blaster) isTrue(l sat.Lit) bool  { return l == b.lTrue }
func (b *Blaster) isFalse(l sat.Lit) bool { return l == b.lFalse }

// fresh allocates an unconstrained literal.
func (b *Blaster) fresh() sat.Lit { return sat.LitOf(b.S.NewVar(), false) }

// VarBits returns (allocating on first use) the bit literals of the named
// variable. The same name always yields the same literals, which is how
// the two sides of an equivalence query share their inputs.
func (b *Blaster) VarBits(name string, width int) []sat.Lit {
	if ls, ok := b.vars[name]; ok {
		if len(ls) != width {
			panic(fmt.Sprintf("bitblast: variable %q used at widths %d and %d",
				name, len(ls), width))
		}
		return ls
	}
	ls := make([]sat.Lit, width)
	for i := range ls {
		ls[i] = b.fresh()
	}
	b.vars[name] = ls
	return ls
}

// --- gate constructors with constant propagation and caching ---

func (b *Blaster) and2(x, y sat.Lit) sat.Lit {
	if b.isFalse(x) || b.isFalse(y) {
		return b.lFalse
	}
	if b.isTrue(x) {
		return y
	}
	if b.isTrue(y) {
		return x
	}
	if x == y {
		return x
	}
	if x == y.Flip() {
		return b.lFalse
	}
	if y < x {
		x, y = y, x
	}
	k := gateKey{op: gAnd, x: x, y: y}
	if g, ok := b.gates[k]; ok {
		return g
	}
	g := b.fresh()
	// g <-> x & y
	b.S.AddClause(g.Flip(), x)
	b.S.AddClause(g.Flip(), y)
	b.S.AddClause(g, x.Flip(), y.Flip())
	b.gates[k] = g
	return g
}

func (b *Blaster) or2(x, y sat.Lit) sat.Lit {
	return b.and2(x.Flip(), y.Flip()).Flip()
}

func (b *Blaster) xor2(x, y sat.Lit) sat.Lit {
	if b.isFalse(x) {
		return y
	}
	if b.isFalse(y) {
		return x
	}
	if b.isTrue(x) {
		return y.Flip()
	}
	if b.isTrue(y) {
		return x.Flip()
	}
	if x == y {
		return b.lFalse
	}
	if x == y.Flip() {
		return b.lTrue
	}
	// Normalize: strip negations into a parity flip for better caching.
	flip := false
	if x.Neg() {
		x, flip = x.Flip(), !flip
	}
	if y.Neg() {
		y, flip = y.Flip(), !flip
	}
	if y < x {
		x, y = y, x
	}
	k := gateKey{op: gXor, x: x, y: y}
	g, ok := b.gates[k]
	if !ok {
		g = b.fresh()
		b.S.AddClause(g.Flip(), x, y)
		b.S.AddClause(g.Flip(), x.Flip(), y.Flip())
		b.S.AddClause(g, x, y.Flip())
		b.S.AddClause(g, x.Flip(), y)
		b.gates[k] = g
	}
	if flip {
		return g.Flip()
	}
	return g
}

// mux returns c ? x : y.
func (b *Blaster) mux(c, x, y sat.Lit) sat.Lit {
	if b.isTrue(c) {
		return x
	}
	if b.isFalse(c) {
		return y
	}
	if x == y {
		return x
	}
	if b.isTrue(x) && b.isFalse(y) {
		return c
	}
	if b.isFalse(x) && b.isTrue(y) {
		return c.Flip()
	}
	k := gateKey{op: gIte, x: c, y: x, z: y}
	if g, ok := b.gates[k]; ok {
		return g
	}
	g := b.fresh()
	// g <-> (c ? x : y)
	b.S.AddClause(g.Flip(), c.Flip(), x)
	b.S.AddClause(g, c.Flip(), x.Flip())
	b.S.AddClause(g.Flip(), c, y)
	b.S.AddClause(g, c, y.Flip())
	b.gates[k] = g
	return g
}

// fullAdder returns (sum, carry) of x + y + cin.
func (b *Blaster) fullAdder(x, y, cin sat.Lit) (sum, cout sat.Lit) {
	sum = b.xor2(b.xor2(x, y), cin)
	cout = b.or2(b.and2(x, y), b.and2(cin, b.xor2(x, y)))
	return
}

// addBits returns x + y (+1 if cin) truncated to len(x) bits.
func (b *Blaster) addBits(x, y []sat.Lit, cin sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(x))
	c := cin
	for i := range x {
		out[i], c = b.fullAdder(x[i], y[i], c)
	}
	return out
}

func (b *Blaster) negBits(x []sat.Lit) []sat.Lit {
	inv := make([]sat.Lit, len(x))
	for i := range x {
		inv[i] = x[i].Flip()
	}
	zero := make([]sat.Lit, len(x))
	for i := range zero {
		zero[i] = b.lFalse
	}
	return b.addBits(inv, zero, b.lTrue)
}

// ultBits returns the literal for x < y (unsigned).
func (b *Blaster) ultBits(x, y []sat.Lit) sat.Lit {
	lt := b.lFalse
	for i := 0; i < len(x); i++ {
		// From LSB to MSB: lt = (¬x_i ∧ y_i) ∨ (x_i == y_i ∧ lt)
		eq := b.xor2(x[i], y[i]).Flip()
		lt = b.or2(b.and2(x[i].Flip(), y[i]), b.and2(eq, lt))
	}
	return lt
}

func (b *Blaster) eqBits(x, y []sat.Lit) sat.Lit {
	acc := b.lTrue
	for i := range x {
		acc = b.and2(acc, b.xor2(x[i], y[i]).Flip())
	}
	return acc
}

// muxBits returns c ? x : y elementwise.
func (b *Blaster) muxBits(c sat.Lit, x, y []sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(x))
	for i := range x {
		out[i] = b.mux(c, x[i], y[i])
	}
	return out
}

func (b *Blaster) constBits(width int, get func(i int) bool) []sat.Lit {
	out := make([]sat.Lit, width)
	for i := range out {
		out[i] = b.constLit(get(i))
	}
	return out
}

// Blast returns the bit literals (LSB first) of t, encoding any needed
// gates into the solver.
func (b *Blaster) Blast(t *term.Term) ([]sat.Lit, error) {
	if ls, ok := b.bits[t]; ok {
		return ls, nil
	}
	ls, err := b.blast(t)
	if err != nil {
		return nil, err
	}
	if len(ls) != t.W() {
		panic(fmt.Sprintf("bitblast: %v produced %d bits, want %d", t.Op, len(ls), t.W()))
	}
	b.bits[t] = ls
	return ls, nil
}

func (b *Blaster) blast(t *term.Term) ([]sat.Lit, error) {
	w := t.W()
	args := make([][]sat.Lit, len(t.Args))
	if t.Op != term.Store { // stores are rejected below without recursing
		for i, a := range t.Args {
			ls, err := b.Blast(a)
			if err != nil {
				return nil, err
			}
			args[i] = ls
		}
	}
	switch t.Op {
	case term.Const:
		return b.constBits(w, func(i int) bool { return t.CVal.Bit(i) == 1 }), nil

	case term.Var:
		return b.VarBits(t.Name, w), nil

	case term.Load:
		// Fresh unconstrained bits per (hash-consed) load node. The smt
		// layer pre-substitutes paired loads with shared variables, so
		// this path is only reached for loads that need no pairing.
		out := make([]sat.Lit, w)
		for i := range out {
			out[i] = b.fresh()
		}
		return out, nil

	case term.Store:
		return nil, fmt.Errorf("%w: store", ErrUnsupported)

	case term.Add:
		return b.addBits(args[0], args[1], b.lFalse), nil

	case term.Sub:
		inv := make([]sat.Lit, w)
		for i := range inv {
			inv[i] = args[1][i].Flip()
		}
		return b.addBits(args[0], inv, b.lTrue), nil

	case term.Neg:
		return b.negBits(args[0]), nil

	case term.Not:
		out := make([]sat.Lit, w)
		for i := range out {
			out[i] = args[0][i].Flip()
		}
		return out, nil

	case term.And, term.Or, term.Xor:
		out := make([]sat.Lit, w)
		for i := range out {
			switch t.Op {
			case term.And:
				out[i] = b.and2(args[0][i], args[1][i])
			case term.Or:
				out[i] = b.or2(args[0][i], args[1][i])
			default:
				out[i] = b.xor2(args[0][i], args[1][i])
			}
		}
		return out, nil

	case term.Mul:
		// Shift-and-add: acc += y_j ? (x << j) : 0. If one operand has
		// constant bits (e.g. a folded immediate), prefer it as the
		// multiplier so zero partial products can be skipped entirely.
		xs, ys := args[0], args[1]
		if countConst(b, xs) > countConst(b, ys) {
			xs, ys = ys, xs
		}
		acc := b.constBits(w, func(int) bool { return false })
		for j := 0; j < w; j++ {
			if b.isFalse(ys[j]) {
				continue
			}
			partial := make([]sat.Lit, w)
			for i := 0; i < w; i++ {
				if i < j {
					partial[i] = b.lFalse
				} else {
					partial[i] = b.and2(xs[i-j], ys[j])
				}
			}
			acc = b.addBits(acc, partial, b.lFalse)
		}
		return acc, nil

	case term.UDiv:
		q, _ := b.divCircuit(args[0], args[1])
		return q, nil

	case term.URem:
		_, r := b.divCircuit(args[0], args[1])
		return r, nil

	case term.SDiv, term.SRem:
		return b.signedDiv(t.Op, args[0], args[1]), nil

	case term.Shl, term.LShr, term.AShr:
		return b.shift(t.Op, args[0], args[1]), nil

	case term.RotL, term.RotR:
		if w&(w-1) != 0 {
			return nil, fmt.Errorf("%w: variable rotate at width %d", ErrUnsupported, w)
		}
		return b.rotate(t.Op == term.RotL, args[0], args[1]), nil

	case term.Eq:
		return []sat.Lit{b.eqBits(args[0], args[1])}, nil

	case term.Ult:
		return []sat.Lit{b.ultBits(args[0], args[1])}, nil

	case term.Slt:
		x := append([]sat.Lit(nil), args[0]...)
		y := append([]sat.Lit(nil), args[1]...)
		n := len(x) - 1
		x[n], y[n] = x[n].Flip(), y[n].Flip()
		return []sat.Lit{b.ultBits(x, y)}, nil

	case term.Concat:
		out := make([]sat.Lit, 0, w)
		out = append(out, args[1]...) // low part
		out = append(out, args[0]...) // high part
		return out, nil

	case term.Extract:
		return append([]sat.Lit(nil), args[0][t.Aux1:t.Aux0+1]...), nil

	case term.ZExt:
		out := append([]sat.Lit(nil), args[0]...)
		for len(out) < w {
			out = append(out, b.lFalse)
		}
		return out, nil

	case term.SExt:
		out := append([]sat.Lit(nil), args[0]...)
		sign := out[len(out)-1]
		for len(out) < w {
			out = append(out, sign)
		}
		return out, nil

	case term.Ite:
		return b.muxBits(args[0][0], args[1], args[2]), nil

	case term.Popcount:
		return b.popcount(args[0]), nil

	case term.Clz:
		return b.countZeros(args[0], true), nil

	case term.Ctz:
		return b.countZeros(args[0], false), nil

	case term.Rev:
		if w%8 != 0 {
			return nil, fmt.Errorf("%w: rev at width %d", ErrUnsupported, w)
		}
		out := make([]sat.Lit, w)
		nb := w / 8
		for i := 0; i < nb; i++ {
			copy(out[i*8:], args[0][(nb-1-i)*8:(nb-i)*8])
		}
		return out, nil

	default:
		return nil, fmt.Errorf("%w: %v", ErrUnsupported, t.Op)
	}
}

// shift builds a barrel shifter with SMT-LIB out-of-range semantics.
func (b *Blaster) shift(op term.Op, x, dist []sat.Lit) []sat.Lit {
	w := len(x)
	fill := b.lFalse
	if op == term.AShr {
		fill = x[w-1]
	}
	// Number of stage bits needed to cover shifts 0..w-1.
	stages := 0
	for 1<<stages < w {
		stages++
	}
	cur := append([]sat.Lit(nil), x...)
	for s := 0; s < stages && s < len(dist); s++ {
		k := 1 << s
		shifted := make([]sat.Lit, w)
		for i := 0; i < w; i++ {
			var src sat.Lit
			if op == term.Shl {
				if i-k >= 0 {
					src = cur[i-k]
				} else {
					src = b.lFalse
				}
			} else {
				if i+k < w {
					src = cur[i+k]
				} else {
					src = fill
				}
			}
			shifted[i] = b.mux(dist[s], src, cur[i])
		}
		cur = shifted
	}
	// Out of range: dist >= w.
	wBits := b.constBits(len(dist), func(i int) bool {
		return uint64(w)>>uint(i)&1 == 1
	})
	ge := b.ultBits(dist, wBits).Flip()
	out := make([]sat.Lit, w)
	for i := range out {
		out[i] = b.mux(ge, fill, cur[i])
	}
	return out
}

// rotate builds a barrel rotator (width must be a power of two, so the
// rotate distance is mod-w automatically via the low stage bits).
func (b *Blaster) rotate(left bool, x, dist []sat.Lit) []sat.Lit {
	w := len(x)
	stages := 0
	for 1<<stages < w {
		stages++
	}
	cur := append([]sat.Lit(nil), x...)
	for s := 0; s < stages && s < len(dist); s++ {
		k := 1 << s
		shifted := make([]sat.Lit, w)
		for i := 0; i < w; i++ {
			var src int
			if left {
				src = ((i-k)%w + w) % w
			} else {
				src = (i + k) % w
			}
			shifted[i] = b.mux(dist[s], cur[src], cur[i])
		}
		cur = shifted
	}
	return cur
}

// divCircuit implements restoring long division on w+1-bit remainders.
// For a zero divisor it naturally produces the SMT-LIB results
// (quotient all-ones, remainder = dividend).
func (b *Blaster) divCircuit(a, d []sat.Lit) (q, r []sat.Lit) {
	w := len(a)
	// Extended remainder and divisor (w+1 bits) to avoid overflow.
	rem := make([]sat.Lit, w+1)
	for i := range rem {
		rem[i] = b.lFalse
	}
	dExt := append(append([]sat.Lit(nil), d...), b.lFalse)
	q = make([]sat.Lit, w)
	for i := w - 1; i >= 0; i-- {
		// rem = rem<<1 | a[i]
		copy(rem[1:], rem[:w])
		rem[0] = a[i]
		ge := b.ultBits(rem, dExt).Flip()
		q[i] = ge
		sub := b.addBits(rem, flipAll(dExt), b.lTrue)
		rem = b.muxBits(ge, sub, rem)
	}
	return q, rem[:w]
}

// countConst counts how many of the literals are the constant literals.
func countConst(b *Blaster, ls []sat.Lit) int {
	n := 0
	for _, l := range ls {
		if b.isTrue(l) || b.isFalse(l) {
			n++
		}
	}
	return n
}

func flipAll(x []sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(x))
	for i := range x {
		out[i] = x[i].Flip()
	}
	return out
}

// signedDiv lowers SDiv/SRem to the unsigned circuit with sign fixups,
// mirroring bv.BV.SDiv/SRem (and SMT-LIB) semantics including division
// by zero.
func (b *Blaster) signedDiv(op term.Op, x, y []sat.Lit) []sat.Lit {
	w := len(x)
	sx, sy := x[w-1], y[w-1]
	ax := b.muxBits(sx, b.negBits(x), x)
	ay := b.muxBits(sy, b.negBits(y), y)
	q, r := b.divCircuit(ax, ay)
	if op == term.SDiv {
		negQ := b.xor2(sx, sy)
		out := b.muxBits(negQ, b.negBits(q), q)
		// Division by zero: result must be ones (positive x) or 1
		// (negative x); the circuit yields q=ones for |x| div 0, then the
		// sign fixup handles it: for x<0, negQ = ¬sy ⊕ sx = 1, -ones = 1. OK.
		return out
	}
	// SRem: sign follows the dividend. For y = 0 the circuit gives
	// r = |x|, and the fixup restores x's sign: r = x as required.
	return b.muxBits(sx, b.negBits(r), r)
}

// popcount sums the bits of x into a len(x)-bit result.
func (b *Blaster) popcount(x []sat.Lit) []sat.Lit {
	w := len(x)
	acc := b.constBits(w, func(int) bool { return false })
	for i := 0; i < w; i++ {
		one := make([]sat.Lit, w)
		one[0] = x[i]
		for j := 1; j < w; j++ {
			one[j] = b.lFalse
		}
		acc = b.addBits(acc, one, b.lFalse)
	}
	return acc
}

// countZeros counts leading (msbFirst) or trailing zeros.
func (b *Blaster) countZeros(x []sat.Lit, msbFirst bool) []sat.Lit {
	w := len(x)
	acc := b.constBits(w, func(int) bool { return false })
	run := b.lTrue // still in the zero run
	for i := 0; i < w; i++ {
		idx := i
		if msbFirst {
			idx = w - 1 - i
		}
		run = b.and2(run, x[idx].Flip())
		one := make([]sat.Lit, w)
		one[0] = run
		for j := 1; j < w; j++ {
			one[j] = b.lFalse
		}
		acc = b.addBits(acc, one, b.lFalse)
	}
	return acc
}

// AssertEqual adds clauses requiring x == y bitwise.
func (b *Blaster) AssertEqual(x, y []sat.Lit) {
	if len(x) != len(y) {
		panic("bitblast: AssertEqual width mismatch")
	}
	for i := range x {
		b.S.AddClause(x[i].Flip(), y[i])
		b.S.AddClause(x[i], y[i].Flip())
	}
}

// AssertDistinct adds clauses requiring x != y (some bit differs).
func (b *Blaster) AssertDistinct(x, y []sat.Lit) {
	if len(x) != len(y) {
		panic("bitblast: AssertDistinct width mismatch")
	}
	diff := make([]sat.Lit, len(x))
	for i := range x {
		diff[i] = b.xor2(x[i], y[i])
	}
	b.S.AddClause(diff...)
}

// AssertLit requires the given literal to hold.
func (b *Blaster) AssertLit(l sat.Lit) { b.S.AddClause(l) }

// DistinctLit returns a literal that is true iff x != y, without
// asserting it.
func (b *Blaster) DistinctLit(x, y []sat.Lit) sat.Lit {
	return b.eqBits(x, y).Flip()
}

// ModelValue extracts the value of blasted bits from a SAT model.
func ModelValue(model []bool, ls []sat.Lit) uint64 {
	var v uint64
	for i, l := range ls {
		if i >= 64 {
			break
		}
		bit := model[l.Var()]
		if l.Neg() {
			bit = !bit
		}
		if bit {
			v |= 1 << uint(i)
		}
	}
	return v
}
