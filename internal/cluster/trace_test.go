package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"iselgen/internal/obs"
	"iselgen/internal/service"
)

// fetchTraceSpans reads one replica's view of a trace in raw span form.
func fetchTraceSpans(t *testing.T, base, traceID string) (service.TraceSpansResponse, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/trace/" + traceID + "?format=spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr service.TraceSpansResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return sr, resp.StatusCode
}

// nodesOf counts the distinct replicas contributing spans.
func nodesOf(spans []obs.TraceSpan) map[string]bool {
	nodes := map[string]bool{}
	for _, s := range spans {
		nodes[s.Node] = true
	}
	return nodes
}

// awaitTrace polls one replica's trace endpoint until the trace
// validates with spans from at least wantNodes replicas (spans commit
// when they end, which can trail the HTTP response that created them).
func awaitTrace(t *testing.T, base, traceID string, wantNodes int) service.TraceSpansResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var last service.TraceSpansResponse
	for time.Now().Before(deadline) {
		sr, status := fetchTraceSpans(t, base, traceID)
		if status == http.StatusOK {
			last = sr
			if obs.ValidateTraceSpans(sr.Spans) == nil && len(nodesOf(sr.Spans)) >= wantNodes {
				return sr
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("trace %s never stabilized at %d nodes; last view: %+v (validate: %v)",
		traceID, wantNodes, last.Spans, obs.ValidateTraceSpans(last.Spans))
	return last
}

// TestClusterFleetTrace is the fill-mode acceptance test for
// distributed tracing: a client-minted trace context sent to a
// non-owning replica must come back as ONE fleet trace — the caller's
// request span rooted under the client's span, its synth flight and
// cluster fill beneath it, and the owner's artifact-serving spans
// parented under the fill across the node boundary. No orphans, a
// single root, and assembly reachable from any replica.
func TestClusterFleetTrace(t *testing.T) {
	lc := bootTest(t, 3, Config{HedgeDelay: time.Millisecond})
	fp, err := lc.Replica(0).SV.FingerprintRequest("mini", clSpec, "")
	if err != nil {
		t.Fatal(err)
	}
	owners := lc.Replica(0).Node.ring.Owners(fp, 2)
	if len(owners) < 2 {
		t.Fatalf("ring returned %d owners", len(owners))
	}
	callerIdx := -1
	for i := 0; i < lc.Len(); i++ {
		if lc.Replica(i).URL != owners[0] && lc.Replica(i).URL != owners[1] {
			callerIdx = i
		}
	}
	if callerIdx == -1 {
		t.Fatalf("no non-owner replica (owners %v)", owners)
	}
	caller := lc.Replica(callerIdx).URL

	client := obs.TraceContext{TraceID: obs.NewTraceID(), SpanID: 0xc11e47, Sampled: true}
	body, _ := json.Marshal(service.SynthesizeRequest{Target: "mini", Spec: clSpec})
	req, _ := http.NewRequest(http.MethodPost, caller+"/v1/synthesize", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, client.Header())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize via caller: %d", resp.StatusCode)
	}
	echo, err := obs.ParseTraceHeader(resp.Header.Get(obs.TraceHeader))
	if err != nil || echo.TraceID != client.TraceID {
		t.Fatalf("caller did not adopt the client trace: %v err=%v", echo, err)
	}

	// The cache miss crossed the fleet (caller is not an owner), so the
	// assembled trace must span the caller and the artifact-serving owner.
	sr := awaitTrace(t, caller, client.TraceID.String(), 2)
	nodes := nodesOf(sr.Spans)
	if !nodes[caller] || !nodes[owners[0]] {
		t.Errorf("trace nodes %v, want caller %s and owner %s", nodes, caller, owners[0])
	}
	byName := map[string][]obs.TraceSpan{}
	for _, s := range sr.Spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	roots := byName["http POST /v1/synthesize"]
	if len(roots) != 1 || roots[0].Node != caller || roots[0].Parent != client.SpanID {
		t.Fatalf("root request span wrong: %+v (want node %s, parent %x)", roots, caller, client.SpanID)
	}
	fills := byName["cluster fill"]
	if len(fills) != 1 || fills[0].Node != caller {
		t.Fatalf("cluster fill span wrong: %+v", fills)
	}
	arts := byName["http POST /v1/artifact"]
	if len(arts) == 0 {
		t.Fatalf("no artifact request span in trace: %v", byName)
	}
	for _, a := range arts {
		if a.Parent != fills[0].SpanID {
			t.Errorf("artifact span on %s parents under %x, want the fill span %x",
				a.Node, a.Parent, fills[0].SpanID)
		}
		if a.Node == caller {
			t.Errorf("artifact span recorded on the caller itself")
		}
	}
	if len(byName["synth flight"]) < 2 {
		t.Errorf("want synth flights on caller and owner, got %+v", byName["synth flight"])
	}

	// Assembly must work from ANY replica — the owner collects the
	// caller's spans over the loop-guarded peer path — and the assembled
	// file must satisfy the strict Chrome-trace parser.
	for _, base := range []string{caller, owners[0]} {
		r2, err := http.Get(base + "/v1/trace/" + client.TraceID.String())
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(r2.Body)
		r2.Body.Close()
		pt, err := obs.ParseTraceFile(data)
		if err != nil {
			t.Fatalf("assembled trace from %s fails strict parse: %v", base, err)
		}
		if pt.Roots != 1 || pt.Nodes < 2 || pt.Spans < len(sr.Spans) {
			t.Errorf("assembled from %s: %+v, want 1 root, >=2 nodes, >=%d spans", base, pt, len(sr.Spans))
		}
	}
}

// TestClusterForwardTrace: in forward mode, the sender's request span
// (rooted under the client context), its cluster-forward hop, and the
// owner's serving spans form one linked fleet trace.
func TestClusterForwardTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("riscv synthesis in -short mode")
	}
	lc := bootTest(t, 3, Config{Mode: ModeForward})
	fp, err := lc.Replica(0).SV.FingerprintRequest("riscv", "", "greedy")
	if err != nil {
		t.Fatal(err)
	}
	owner := lc.Replica(0).Node.OwnerOf(fp)
	sender := ""
	for i := 0; i < lc.Len(); i++ {
		if lc.Replica(i).URL != owner {
			sender = lc.Replica(i).URL
			break
		}
	}
	if status, body := post(t, owner+"/v1/synthesize",
		service.SynthesizeRequest{Target: "riscv"}); status != http.StatusOK {
		t.Fatalf("warm owner: %d %s", status, body)
	}

	client := obs.TraceContext{TraceID: obs.NewTraceID(), SpanID: 0xf02d, Sampled: true}
	body, _ := json.Marshal(service.SelectRequest{Target: "riscv", Program: clProg})
	req, _ := http.NewRequest(http.MethodPost, sender+"/v1/select", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, client.Header())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded select: %d", resp.StatusCode)
	}

	sr := awaitTrace(t, sender, client.TraceID.String(), 2)
	byName := map[string][]obs.TraceSpan{}
	for _, s := range sr.Spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	sel := byName["http POST /v1/select"]
	var senderSpan, ownerSpan *obs.TraceSpan
	for i := range sel {
		switch sel[i].Node {
		case sender:
			senderSpan = &sel[i]
		case owner:
			ownerSpan = &sel[i]
		}
	}
	if senderSpan == nil || ownerSpan == nil {
		t.Fatalf("want select spans on both sender and owner, got %+v", sel)
	}
	if senderSpan.Parent != client.SpanID {
		t.Errorf("sender span parents under %x, want client %x", senderSpan.Parent, client.SpanID)
	}
	fwd := byName["cluster forward"]
	if len(fwd) != 1 || fwd[0].Node != sender || fwd[0].Parent != senderSpan.SpanID {
		t.Fatalf("cluster forward span wrong: %+v (want on %s under %x)", fwd, sender, senderSpan.SpanID)
	}
	if ownerSpan.Parent != fwd[0].SpanID {
		t.Errorf("owner span parents under %x, want the forward span %x", ownerSpan.Parent, fwd[0].SpanID)
	}
}
