package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"time"

	"iselgen/internal/obs"
	"iselgen/internal/service"
	"iselgen/internal/smt"
)

// Modes select what a non-owning replica does with a request it can
// serve but does not own.
const (
	// ModeFill (the default): serve every request locally; on a library
	// cache miss, fetch the artifact from the fingerprint's ring owner
	// and verify it into the local cache. Selection stays local — only
	// the expensive synthesis is deduplicated fleet-wide.
	ModeFill = "fill"
	// ModeForward: proxy select requests to the fingerprint's owner and
	// relay its response, falling back to local service when the owner
	// is unreachable. Concentrates each library's working set on its
	// owner at the price of a network hop per request.
	ModeForward = "forward"
)

// Config configures a cluster node.
type Config struct {
	// Self is this replica's base URL as it appears in Peers.
	Self string
	// Peers are the base URLs of every replica, self included.
	Peers []string
	// Mode is ModeFill (default) or ModeForward.
	Mode string
	// VNodes is the virtual-node count per member (0 = default 64).
	VNodes int
	// HedgeDelay is how long the primary artifact fetch runs alone
	// before a cache-only probe is hedged to the next replica in ring
	// order (0 = default 150ms; negative disables hedging).
	HedgeDelay time.Duration
	// FetchTimeout bounds one artifact fetch attempt, synthesis at the
	// owner included (0 = default 120s).
	FetchTimeout time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// peer's circuit (0 = default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects before
	// admitting a half-open probe (0 = default 5s).
	BreakerCooldown time.Duration
	// Obs receives cluster metrics and spans; share it with the wrapped
	// service so /metrics exposes both.
	Obs *obs.Obs
	// Logger, when set, receives peer-failure and degradation events.
	Logger *slog.Logger
	// Client is the HTTP client for peer calls (nil = a default client;
	// timeouts come from per-request contexts).
	Client *http.Client
}

// Node is one replica's cluster layer: the ring, the peer set with
// breakers, and the handler wrapping the local service. It implements
// service.RemoteFiller.
type Node struct {
	cfg  Config
	sv   *service.Server
	ring *Ring
	peer map[string]*peerState
}

// peerState is one remote replica as seen from this node.
type peerState struct {
	url     string
	breaker *breaker
}

// New builds the cluster layer around a local service. Wire it in with
// sv.SetFiller(node) before serving, and serve node.Handler() instead
// of sv.Handler().
func New(sv *service.Server, cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: config needs Self")
	}
	switch cfg.Mode {
	case "":
		cfg.Mode = ModeFill
	case ModeFill, ModeForward:
	default:
		return nil, fmt.Errorf("cluster: unknown mode %q (have: fill, forward)", cfg.Mode)
	}
	if cfg.HedgeDelay == 0 {
		cfg.HedgeDelay = 150 * time.Millisecond
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 120 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	members := append([]string(nil), cfg.Peers...)
	selfListed := false
	for _, m := range members {
		if m == cfg.Self {
			selfListed = true
		}
	}
	if !selfListed {
		members = append(members, cfg.Self)
	}
	n := &Node{
		cfg:  cfg,
		sv:   sv,
		ring: NewRing(members, cfg.VNodes),
		peer: map[string]*peerState{},
	}
	for _, m := range n.ring.Members() {
		if m == cfg.Self {
			continue
		}
		ps := &peerState{url: m, breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)}
		n.peer[m] = ps
		if reg := cfg.Obs.MetricsOrNil(); reg != nil {
			b := ps.breaker
			reg.GaugeFunc("cluster_breaker_state",
				"peer circuit state (0 closed, 1 half-open, 2 open)",
				func() int64 { return int64(b.State()) }, "peer", m)
		}
	}
	return n, nil
}

// count bumps a cluster counter if a registry is attached.
func (n *Node) count(name, help string, labels ...string) {
	if reg := n.cfg.Obs.MetricsOrNil(); reg != nil {
		reg.Counter(name, help, labels...).Add(1)
	}
}

// OwnerOf returns the replica URL owning a fingerprint.
func (n *Node) OwnerOf(fp string) string { return n.ring.Owner(fp) }

// Self returns this replica's base URL.
func (n *Node) Self() string { return n.cfg.Self }

// fetchResult is one peer fetch outcome on the hedge race.
type fetchResult struct {
	fill *service.RemoteFill
	err  error
	peer string
}

// FetchArtifact implements service.RemoteFiller: resolve the
// fingerprint's ring owner, fetch the artifact from it, and hedge a
// cache-only probe to the next replica if the owner is slow. Only the
// owner's fetch may trigger synthesis — the hedge can answer from its
// cache but never start work, which is what keeps a cold key's
// synthesis at exactly one fleet-wide.
func (n *Node) FetchArtifact(ctx context.Context, req service.FillRequest) (*service.RemoteFill, error) {
	owners := n.ring.Owners(req.Fingerprint, 2)
	if len(owners) == 0 || owners[0] == n.cfg.Self {
		// We own the key (or there is no fleet): synthesize locally.
		return nil, service.ErrLocalFill
	}
	primary := n.peer[owners[0]]
	if primary == nil {
		return nil, service.ErrLocalFill
	}
	if !primary.breaker.Allow() {
		n.count("cluster_breaker_rejects", "peer calls rejected by an open circuit", "peer", primary.url)
		n.logf("peer circuit open, filling locally", "peer", primary.url, "fingerprint", req.Fingerprint)
		return nil, fmt.Errorf("cluster: circuit open for owner %s", primary.url)
	}

	ctx, cancel := context.WithTimeout(ctx, n.cfg.FetchTimeout)
	defer cancel()
	results := make(chan fetchResult, 2)
	n.count("cluster_fills_remote", "artifact fills requested from remote owners")
	go func() {
		fill, err := n.fetchFrom(ctx, primary, req, false)
		results <- fetchResult{fill, err, primary.url}
	}()

	// Hedge: after the delay, probe the next distinct replica's cache.
	// A miss there is a clean "no", never a second synthesis.
	var hedgeTimer *time.Timer
	inflight := 1
	if n.cfg.HedgeDelay > 0 && len(owners) > 1 && owners[1] != n.cfg.Self {
		if hedge := n.peer[owners[1]]; hedge != nil {
			hedgeTimer = time.AfterFunc(n.cfg.HedgeDelay, func() {
				if !hedge.breaker.Allow() {
					results <- fetchResult{nil, fmt.Errorf("cluster: circuit open for hedge %s", hedge.url), hedge.url}
					return
				}
				n.count("cluster_hedges", "hedged cache-only probes issued")
				hreq := req
				hreq.CacheOnly = true
				fill, err := n.fetchFrom(ctx, hedge, hreq, true)
				results <- fetchResult{fill, err, hedge.url}
			})
			inflight = 2
		}
	}
	defer func() {
		if hedgeTimer != nil && hedgeTimer.Stop() {
			inflight-- // the probe never launched; don't wait for it
		}
	}()

	var firstErr error
	for i := 0; i < inflight; i++ {
		select {
		case res := <-results:
			if res.err == nil {
				if res.peer != primary.url {
					n.count("cluster_hedge_wins", "hedged probes that answered first")
				}
				return res.fill, nil
			}
			if firstErr == nil {
				firstErr = res.err
			}
			if hedgeTimer != nil && res.peer == primary.url && hedgeTimer.Stop() {
				inflight-- // primary already failed; no point launching the probe late
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, firstErr
}

// fetchFrom performs one POST /v1/artifact exchange with a peer,
// recording the outcome on its breaker. cacheOnly misses (404) are a
// healthy "not cached", not a peer failure.
func (n *Node) fetchFrom(ctx context.Context, ps *peerState, req service.FillRequest, cacheOnly bool) (*service.RemoteFill, error) {
	req.CacheOnly = cacheOnly
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, ps.url+"/v1/artifact", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	if req.RequestID != "" {
		hr.Header.Set("X-Request-Id", req.RequestID)
	}
	if req.TraceParent != "" {
		// Both legs of the hedge carry the fill span's context: whichever
		// peer answers, its request span lands in the same fleet trace.
		hr.Header.Set(obs.TraceHeader, req.TraceParent)
	}
	resp, err := n.cfg.Client.Do(hr)
	if err != nil {
		ps.breaker.Failure()
		n.count("cluster_peer_errors", "failed peer exchanges", "peer", ps.url)
		n.logf("peer fetch failed", "peer", ps.url, "err", err.Error())
		return nil, fmt.Errorf("cluster: fetch from %s: %w", ps.url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, maxArtifactBytes))
	if err != nil {
		ps.breaker.Failure()
		n.count("cluster_peer_errors", "failed peer exchanges", "peer", ps.url)
		return nil, fmt.Errorf("cluster: fetch from %s: %w", ps.url, err)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		ps.breaker.Success()
		var art service.ArtifactResponse
		if err := json.Unmarshal(out, &art); err != nil {
			return nil, fmt.Errorf("cluster: bad artifact from %s: %w", ps.url, err)
		}
		if art.Fingerprint != req.Fingerprint {
			return nil, fmt.Errorf("cluster: %s answered fingerprint %s for %s", ps.url, art.Fingerprint, req.Fingerprint)
		}
		n.count("cluster_peer_hits", "cache misses answered by a peer artifact")
		return &service.RemoteFill{
			Text:          art.Library,
			Partial:       art.Partial,
			Stats:         art.Stats,
			Reused:        art.Reused,
			Resynthesized: art.Resynthesized,
			Peer:          ps.url,
		}, nil
	case resp.StatusCode >= 500:
		ps.breaker.Failure()
		n.count("cluster_peer_errors", "failed peer exchanges", "peer", ps.url)
		return nil, fmt.Errorf("cluster: %s answered %d", ps.url, resp.StatusCode)
	default:
		// 4xx: the peer is healthy but cannot help (cache-only miss,
		// config-skew conflict). Not a breaker event.
		ps.breaker.Success()
		return nil, fmt.Errorf("cluster: %s answered %d: %s", ps.url, resp.StatusCode, bytes.TrimSpace(out))
	}
}

// maxArtifactBytes bounds an artifact response read from a peer.
const maxArtifactBytes = 64 << 20

// memoProbeTimeout bounds one solver-memo probe: a probe is two map
// lookups on the peer, so anything slower is a peer problem, and the
// caller (an API query, never the synthesis hot path) falls back to a
// plain miss.
const memoProbeTimeout = 2 * time.Second

// maxMemoBytes bounds a solver-query response read from a peer.
const maxMemoBytes = 1 << 20

// memoResult is one peer memo-probe outcome on the hedge race.
type memoResult struct {
	entry smt.MemoEntry
	ok    bool
	err   error
	peer  string
}

// ProbeMemo implements service.MemoProber: ask the memo key's ring
// owner whether it holds a verdict, hedging to the next distinct
// replica after HedgeDelay (or immediately once the owner answers
// empty). Every leg is cache-only by construction — the request carries
// the forwarded marker, so the peer answers strictly from its local
// memo and a fleet-wide miss costs a few map lookups, never a solve.
func (n *Node) ProbeMemo(ctx context.Context, key string) (smt.MemoEntry, bool) {
	owners := n.ring.Owners(key, 2)
	var targets []*peerState
	for _, o := range owners {
		if o == n.cfg.Self {
			continue
		}
		if ps := n.peer[o]; ps != nil {
			targets = append(targets, ps)
		}
	}
	if len(targets) == 0 {
		return smt.MemoEntry{}, false
	}
	// A sampled API query's probes join its fleet trace: the probe span
	// parents under the request span and its context rides each leg's
	// X-Iseld-Trace header.
	var psp *obs.Span
	if tr := n.cfg.Obs.TracerOrNil(); tr != nil {
		if tc, ok := service.TraceContextFrom(ctx); ok {
			psp = tr.StartRemote("memo probe", tc)
		} else {
			psp = tr.Start("memo probe")
		}
	}
	traceHdr := ""
	if pc := psp.Context(); pc.Valid() {
		traceHdr = pc.Header()
	}
	defer psp.End()
	ctx, cancel := context.WithTimeout(ctx, memoProbeTimeout)
	defer cancel()
	results := make(chan memoResult, len(targets))
	launch := func(ps *peerState) {
		if !ps.breaker.Allow() {
			results <- memoResult{err: fmt.Errorf("cluster: circuit open for %s", ps.url), peer: ps.url}
			return
		}
		n.count("cluster_memo_probes", "cache-only solver verdict probes sent to peers")
		e, ok, err := n.probeMemoFrom(ctx, ps, key, traceHdr)
		results <- memoResult{e, ok, err, ps.url}
	}
	go launch(targets[0])
	inflight := 1
	var hedgeTimer *time.Timer
	if n.cfg.HedgeDelay > 0 && len(targets) > 1 {
		second := targets[1]
		hedgeTimer = time.AfterFunc(n.cfg.HedgeDelay, func() {
			n.count("cluster_memo_hedges", "hedged memo probes issued")
			launch(second)
		})
		inflight = 2
	}
	defer func() {
		if hedgeTimer != nil {
			hedgeTimer.Stop()
		}
	}()
	for i := 0; i < inflight; i++ {
		select {
		case res := <-results:
			if res.err == nil && res.ok {
				n.count("cluster_memo_hits", "peer memo probes that returned a verdict")
				return res.entry, true
			}
			// The owner came up empty (miss or failure): if the hedge has
			// not launched yet, launch it now rather than waiting out the
			// delay — the second replica is the only remaining chance.
			if hedgeTimer != nil && res.peer == targets[0].url && hedgeTimer.Stop() {
				go launch(targets[1])
			}
		case <-ctx.Done():
			return smt.MemoEntry{}, false
		}
	}
	return smt.MemoEntry{}, false
}

// probeMemoFrom performs one GET /v1/solver/query exchange with a peer,
// recording the outcome on its breaker. A 404 is a healthy "no verdict
// here", not a peer failure.
func (n *Node) probeMemoFrom(ctx context.Context, ps *peerState, key, traceHdr string) (smt.MemoEntry, bool, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet,
		ps.url+"/v1/solver/query?key="+url.QueryEscape(key), nil)
	if err != nil {
		return smt.MemoEntry{}, false, err
	}
	hr.Header.Set(service.ForwardedHeader, n.cfg.Self)
	if traceHdr != "" {
		hr.Header.Set(obs.TraceHeader, traceHdr)
	}
	resp, err := n.cfg.Client.Do(hr)
	if err != nil {
		ps.breaker.Failure()
		n.count("cluster_peer_errors", "failed peer exchanges", "peer", ps.url)
		return smt.MemoEntry{}, false, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, maxMemoBytes))
	if err != nil {
		ps.breaker.Failure()
		n.count("cluster_peer_errors", "failed peer exchanges", "peer", ps.url)
		return smt.MemoEntry{}, false, err
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		ps.breaker.Success()
		var qr service.SolverQueryResponse
		if err := json.Unmarshal(out, &qr); err != nil || !qr.Found || qr.Entry == nil {
			return smt.MemoEntry{}, false, fmt.Errorf("cluster: bad solver answer from %s", ps.url)
		}
		return *qr.Entry, true, nil
	case resp.StatusCode >= 500:
		ps.breaker.Failure()
		n.count("cluster_peer_errors", "failed peer exchanges", "peer", ps.url)
		return smt.MemoEntry{}, false, fmt.Errorf("cluster: %s answered %d", ps.url, resp.StatusCode)
	default:
		// 4xx: the peer is healthy but holds no verdict for the key.
		ps.breaker.Success()
		return smt.MemoEntry{}, false, nil
	}
}

// traceCollectTimeout bounds one peer span-ring read: a bounded-ring
// export plus JSON, so anything slower is a peer problem and trace
// assembly proceeds with whatever the healthy replicas returned.
const traceCollectTimeout = 2 * time.Second

// maxTraceBytes bounds a trace-spans response read from a peer.
const maxTraceBytes = 8 << 20

// CollectTraceSpans implements service.TraceCollector: ask every peer
// for its locally recorded spans of one trace. Each query carries the
// forwarded marker, so peers answer strictly from their own span rings
// (cache-only, loop-free) and a missing or broken peer just contributes
// nothing — assembly is best-effort by design, exactly like the
// degradation story everywhere else in this layer.
func (n *Node) CollectTraceSpans(ctx context.Context, traceID string) []obs.TraceSpan {
	var out []obs.TraceSpan
	ctx, cancel := context.WithTimeout(ctx, traceCollectTimeout)
	defer cancel()
	type peerSpans struct {
		spans []obs.TraceSpan
		err   error
		peer  string
	}
	results := make(chan peerSpans, len(n.peer))
	queried := 0
	for _, ps := range n.peer {
		if !ps.breaker.Allow() {
			continue
		}
		queried++
		go func(ps *peerState) {
			spans, err := n.collectFrom(ctx, ps, traceID)
			results <- peerSpans{spans, err, ps.url}
		}(ps)
	}
	n.count("cluster_trace_collects", "fleet trace-assembly fan-outs")
	for i := 0; i < queried; i++ {
		select {
		case res := <-results:
			if res.err != nil {
				n.logf("trace collect failed", "peer", res.peer, "err", res.err.Error())
				continue
			}
			out = append(out, res.spans...)
		case <-ctx.Done():
			return out
		}
	}
	return out
}

// collectFrom performs one GET /v1/trace/{id} exchange with a peer,
// recording the outcome on its breaker. An empty span set is a healthy
// "nothing recorded here", not a peer failure.
func (n *Node) collectFrom(ctx context.Context, ps *peerState, traceID string) ([]obs.TraceSpan, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, ps.url+"/v1/trace/"+traceID, nil)
	if err != nil {
		return nil, err
	}
	hr.Header.Set(service.ForwardedHeader, n.cfg.Self)
	resp, err := n.cfg.Client.Do(hr)
	if err != nil {
		ps.breaker.Failure()
		n.count("cluster_peer_errors", "failed peer exchanges", "peer", ps.url)
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, maxTraceBytes))
	if err != nil {
		ps.breaker.Failure()
		n.count("cluster_peer_errors", "failed peer exchanges", "peer", ps.url)
		return nil, err
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		ps.breaker.Success()
		var tr service.TraceSpansResponse
		if err := json.Unmarshal(out, &tr); err != nil {
			return nil, fmt.Errorf("cluster: bad trace spans from %s: %w", ps.url, err)
		}
		return tr.Spans, nil
	case resp.StatusCode >= 500:
		ps.breaker.Failure()
		n.count("cluster_peer_errors", "failed peer exchanges", "peer", ps.url)
		return nil, fmt.Errorf("cluster: %s answered %d", ps.url, resp.StatusCode)
	default:
		// 4xx: the peer is healthy but has no tracer (or no such trace).
		ps.breaker.Success()
		return nil, nil
	}
}

func (n *Node) logf(msg string, args ...any) {
	if n.cfg.Logger != nil {
		n.cfg.Logger.Info(msg, args...)
	}
}

// ClusterStatus is the JSON shape of GET /v1/cluster.
type ClusterStatus struct {
	Self   string       `json:"self"`
	Mode   string       `json:"mode"`
	VNodes int          `json:"vnodes"`
	Peers  []PeerStatus `json:"peers"`
}

// PeerStatus is one replica's health as seen from this node.
type PeerStatus struct {
	URL          string `json:"url"`
	Self         bool   `json:"self,omitempty"`
	BreakerState int    `json:"breaker_state"`
	Failures     int    `json:"failures,omitempty"`
}

// Handler returns the node's HTTP handler: the local service tree plus
// GET /v1/cluster, with select requests intercepted for forwarding in
// ModeForward. The whole tree — forwarding included — sits inside the
// service's request middleware, so a forwarded request gets the same
// request span, trace context, access-log line, and latency exemplar on
// the sending replica as a locally served one (and its hop to the owner
// parents under that span).
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster", n.handleStatus)
	local := n.sv.Routes()
	if n.cfg.Mode == ModeForward {
		fwd := n.forwarder(local)
		mux.Handle("POST /v1/select", fwd)
		mux.Handle("POST /v1/select/batch", fwd)
	}
	mux.Handle("/", local)
	return n.sv.Middleware(mux)
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := ClusterStatus{Self: n.cfg.Self, Mode: n.cfg.Mode, VNodes: n.ring.vnodes}
	for _, m := range n.ring.Members() {
		ps := PeerStatus{URL: m, Self: m == n.cfg.Self}
		if p := n.peer[m]; p != nil {
			ps.BreakerState = p.breaker.State()
			ps.Failures = p.breaker.Failures()
		}
		st.Peers = append(st.Peers, ps)
	}
	sort.Slice(st.Peers, func(i, j int) bool { return st.Peers[i].URL < st.Peers[j].URL })
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st)
}

// forwardHeader marks an already-forwarded request; a request carrying
// it is always served locally, so two skewed ring views cannot bounce a
// request between replicas forever.
const forwardHeader = "X-Iseld-Forwarded"

// maxForwardBytes bounds the request body a forwarder buffers.
const maxForwardBytes = 8 << 20

// forwarder proxies select requests to the owning replica, falling back
// to the local handler when the owner is this node, unreachable, or
// circuit-broken.
func (n *Node) forwarder(local http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(forwardHeader) != "" {
			local.ServeHTTP(w, r)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxForwardBytes))
		if err != nil {
			http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		serveLocal := func() {
			r.Body = io.NopCloser(bytes.NewReader(body))
			local.ServeHTTP(w, r)
		}
		var key struct {
			Target   string `json:"target"`
			Selector string `json:"selector"`
		}
		if err := json.Unmarshal(body, &key); err != nil {
			serveLocal() // malformed body: let the service produce its 400
			return
		}
		fp, err := n.sv.FingerprintRequest(key.Target, "", key.Selector)
		if err != nil {
			serveLocal()
			return
		}
		owner := n.ring.Owner(fp)
		if owner == "" || owner == n.cfg.Self {
			serveLocal()
			return
		}
		ps := n.peer[owner]
		if ps == nil || !ps.breaker.Allow() {
			n.count("cluster_forward_local", "forwards degraded to local service")
			serveLocal()
			return
		}
		hr, err := http.NewRequestWithContext(r.Context(), http.MethodPost, owner+r.URL.Path, bytes.NewReader(body))
		if err != nil {
			serveLocal()
			return
		}
		hr.Header.Set("Content-Type", "application/json")
		hr.Header.Set(forwardHeader, n.cfg.Self)
		if rid := service.RequestIDFrom(r.Context()); rid != "" {
			hr.Header.Set("X-Request-Id", rid)
		}
		// The hop joins the sender-side trace: a "cluster forward" span
		// parents under the request span, and its context rides the proxied
		// request so the owner's spans land in the same fleet trace.
		var fsp *obs.Span
		if tr := n.cfg.Obs.TracerOrNil(); tr != nil {
			if tc, ok := service.TraceContextFrom(r.Context()); ok {
				fsp = tr.StartRemote("cluster forward", tc)
			} else {
				fsp = tr.Start("cluster forward")
			}
		}
		fsp.SetStr("peer", owner)
		if fc := fsp.Context(); fc.Valid() {
			hr.Header.Set(obs.TraceHeader, fc.Header())
		}
		resp, err := n.cfg.Client.Do(hr)
		if err != nil {
			ps.breaker.Failure()
			n.count("cluster_peer_errors", "failed peer exchanges", "peer", ps.url)
			n.count("cluster_forward_local", "forwards degraded to local service")
			n.logf("forward failed, serving locally", "peer", owner, "err", err.Error())
			fsp.SetStr("outcome", "local").End()
			serveLocal()
			return
		}
		defer resp.Body.Close()
		ps.breaker.Success()
		n.count("cluster_forwarded", "select requests proxied to their ring owner")
		fsp.SetInt("status", int64(resp.StatusCode)).End()
		if rid := resp.Header.Get("X-Request-Id"); rid != "" {
			w.Header().Set("X-Request-Id", rid)
		}
		w.Header().Set("X-Iseld-Forwarded-To", owner)
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	})
}
