package cluster

import (
	"testing"
	"time"
)

func TestBreakerOpensAtThreshold(t *testing.T) {
	b := newBreaker(3, time.Hour)
	for i := 0; i < 2; i++ {
		b.Failure()
		if !b.Allow() {
			t.Fatalf("closed after %d failures, threshold 3", i+1)
		}
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state=%d after threshold failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside cooldown")
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := newBreaker(3, time.Hour)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures opened the circuit")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := newBreaker(1, 10*time.Millisecond)
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("threshold-1 breaker did not open on first failure")
	}
	time.Sleep(15 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe rejected")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state=%d during probe, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second probe admitted while one is in flight")
	}

	// Probe failure re-opens immediately...
	b.Failure()
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("failed probe did not re-open the circuit")
	}
	// ...and a later successful probe closes it.
	time.Sleep(15 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second probe window rejected")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful probe did not close the circuit")
	}
}
