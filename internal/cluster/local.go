package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"iselgen/internal/obs"
	"iselgen/internal/service"
)

// ReplicaFactory builds one replica's service (and the observability
// sink shared between the service and its cluster layer). Each replica
// must get its own Server and its own Obs — sharing either would let
// one replica answer from another's memory and defeat the point of an
// in-process cluster.
type ReplicaFactory func(i int) (*service.Server, *obs.Obs, error)

// Replica is one running member of a Local cluster.
type Replica struct {
	URL  string
	SV   *service.Server
	Node *Node

	hs     *http.Server
	killed bool
}

// Local is an in-process cluster: n full iseld replicas on loopback
// ports, cross-wired through real HTTP. The tests and the load harness
// both use it — it exercises the exact serialization, forwarding, and
// degradation paths a deployed fleet does, minus only the real network.
type Local struct {
	replicas []*Replica
}

// StartLocal boots n replicas. Listeners are bound first so every
// replica's ring can be built over the full set of final URLs; tmpl
// supplies the cluster knobs (Mode, HedgeDelay, breaker settings) while
// Self, Peers, and Obs are filled in per replica.
func StartLocal(n int, mk ReplicaFactory, tmpl Config) (*Local, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 replica, got %d", n)
	}
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				lns[j].Close()
			}
			return nil, fmt.Errorf("cluster: listen replica %d: %w", i, err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	lc := &Local{}
	fail := func(err error) (*Local, error) {
		lc.Close()
		for i, ln := range lns {
			if i >= len(lc.replicas) {
				ln.Close()
			}
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		sv, ob, err := mk(i)
		if err != nil {
			return fail(fmt.Errorf("cluster: build replica %d: %w", i, err))
		}
		cfg := tmpl
		cfg.Self = urls[i]
		cfg.Peers = urls
		cfg.Obs = ob
		node, err := New(sv, cfg)
		if err != nil {
			sv.Close()
			return fail(fmt.Errorf("cluster: replica %d: %w", i, err))
		}
		sv.SetFiller(node)
		sv.SetMemoProber(node)
		sv.SetTraceCollector(node)
		rep := &Replica{
			URL:  urls[i],
			SV:   sv,
			Node: node,
			hs:   &http.Server{Handler: node.Handler()},
		}
		lc.replicas = append(lc.replicas, rep)
		go rep.hs.Serve(lns[i])
	}
	return lc, nil
}

// URLs returns every replica's base URL, killed ones included (their
// slot in the ring does not change — that is what the degradation path
// is for).
func (lc *Local) URLs() []string {
	out := make([]string, len(lc.replicas))
	for i, r := range lc.replicas {
		out[i] = r.URL
	}
	return out
}

// Replica returns replica i.
func (lc *Local) Replica(i int) *Replica { return lc.replicas[i] }

// Len returns the replica count.
func (lc *Local) Len() int { return len(lc.replicas) }

// Kill abruptly stops replica i: its listener and connections close,
// so peers see connection errors — the unreachable-peer case, not a
// graceful drain.
func (lc *Local) Kill(i int) {
	r := lc.replicas[i]
	if r.killed {
		return
	}
	r.killed = true
	r.hs.Close()
	r.SV.Close()
}

// Close shuts every live replica down gracefully.
func (lc *Local) Close() {
	for _, r := range lc.replicas {
		if r.killed {
			continue
		}
		r.killed = true
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		r.hs.Shutdown(ctx)
		r.SV.Shutdown(ctx)
		r.SV.Close()
		cancel()
	}
}
