package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"iselgen/internal/core"
	"iselgen/internal/obs"
	"iselgen/internal/service"
)

// clSpec is the same miniature single-width ISA the service tests use:
// big enough to synthesize a real library, small enough to do it in
// well under a second.
const clSpec = `
inst ADDrr(rn: reg64, rm: reg64) { rd = rn + rm; }
inst SUBrr(rn: reg64, rm: reg64) { rd = rn - rm; }
inst ADDri(rn: reg64, imm: imm12) { rd = rn + zext(imm, 64); }
inst LSLri(rn: reg64, sh: imm6) { rd = rn << zext(sh, 64); }
inst ANDrr(rn: reg64, rm: reg64) { rd = rn & rm; }
inst ORNrr(rn: reg64, rm: reg64) { rd = rn | ~rm; }
inst MVNr(rm: reg64) { rd = ~rm; }
inst MULrr(rn: reg64, rm: reg64) { rd = rn * rm; }
inst MOVZ(imm: imm16) { rd = zext(imm, 64); }
`

// clProg is a fixed straight-line program in the fuzz corpus text form.
const clProg = "v0 = param 64\nv1 = param 64\nv2 = add 64 v0 v1\nv3 = mul 64 v2 v0\nret v3\n"

// bootTest starts an n-replica in-process cluster with the fast test
// synthesis configuration.
func bootTest(t *testing.T, n int, tmpl Config) *Local {
	t.Helper()
	mk := func(i int) (*service.Server, *obs.Obs, error) {
		o := obs.New()
		sv, err := service.New(service.Config{
			Workers:     2,
			QueueDepth:  8,
			Synth:       core.Config{TestInputs: 16, Workers: 2, SMTMaxConflicts: 64},
			MaxPatterns: 10,
			Obs:         o,
		})
		return sv, o, err
	}
	lc, err := StartLocal(n, mk, tmpl)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	return lc
}

func post(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

func metricsOf(t *testing.T, base string) service.MetricsSnapshot {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m service.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// inlineNameOwnedBy finds an inline-spec target name whose cache
// fingerprint the given replica owns (ring placement uses random
// loopback ports, so ownership cannot be pinned statically).
func inlineNameOwnedBy(t *testing.T, lc *Local, replica int, exclude ...string) string {
	t.Helper()
	for i := 0; i < 256; i++ {
		name := fmt.Sprintf("mini%d", i)
		skip := false
		for _, ex := range exclude {
			if name == ex {
				skip = true
			}
		}
		if skip {
			continue
		}
		fp, err := lc.Replica(0).SV.FingerprintRequest(name, clSpec, "")
		if err != nil {
			t.Fatal(err)
		}
		if lc.Replica(0).Node.OwnerOf(fp) == lc.Replica(replica).URL {
			return name
		}
	}
	t.Fatal("no inline target name hashed to the wanted replica in 256 tries")
	return ""
}

// TestClusterColdKeySynthesizedOnce is the tentpole acceptance: three
// replicas hit concurrently with the same cold key run synthesis
// exactly once fleet-wide — the two non-owners fill from the owner, and
// the owner's singleflight collapses the concurrent fills.
func TestClusterColdKeySynthesizedOnce(t *testing.T) {
	lc := bootTest(t, 3, Config{})
	name := inlineNameOwnedBy(t, lc, 2) // any replica; 2 keeps it interesting
	req := service.SynthesizeRequest{Target: name, Spec: clSpec}

	var wg sync.WaitGroup
	type res struct {
		status int
		body   service.SynthesizeResponse
	}
	results := make([]res, lc.Len())
	for i := 0; i < lc.Len(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body := post(t, lc.Replica(i).URL+"/v1/synthesize", req)
			results[i].status = status
			json.Unmarshal(body, &results[i].body)
		}(i)
	}
	wg.Wait()

	for i, r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("replica %d answered %d", i, r.status)
		}
		if r.body.Rules == 0 || r.body.Fingerprint != results[0].body.Fingerprint {
			t.Fatalf("replica %d: rules=%d fp=%s (want fp %s)",
				i, r.body.Rules, r.body.Fingerprint, results[0].body.Fingerprint)
		}
		if r.body.Rules != results[0].body.Rules {
			t.Fatalf("replica %d returned %d rules, replica 0 returned %d",
				i, r.body.Rules, results[0].body.Rules)
		}
	}

	var synth, peer uint64
	for i := 0; i < lc.Len(); i++ {
		m := metricsOf(t, lc.Replica(i).URL)
		synth += m.SynthRuns + m.IncrRuns
		peer += m.PeerFills
	}
	if synth != 1 {
		t.Fatalf("fleet ran %d syntheses for one cold key, want exactly 1", synth)
	}
	if peer != 2 {
		t.Fatalf("fleet recorded %d peer fills, want 2 (both non-owners)", peer)
	}
}

// TestClusterByteIdenticalResponses is acceptance: once warm, the same
// select request answered by any replica is byte-for-byte identical.
func TestClusterByteIdenticalResponses(t *testing.T) {
	lc := bootTest(t, 3, Config{})
	name := inlineNameOwnedBy(t, lc, 1)

	// Round 1 warms every replica (owner synthesizes, others peer-fill).
	for i := 0; i < lc.Len(); i++ {
		if status, body := post(t, lc.Replica(i).URL+"/v1/synthesize",
			service.SynthesizeRequest{Target: name, Spec: clSpec}); status != http.StatusOK {
			t.Fatalf("warm replica %d: %d %s", i, status, body)
		}
	}

	// Round 2: every replica answers from its own cache; bodies and
	// status must match byte for byte regardless of receiving replica.
	req := service.SynthesizeRequest{Target: name, Spec: clSpec, Emit: true}
	var first []byte
	for i := 0; i < lc.Len(); i++ {
		status, body := post(t, lc.Replica(i).URL+"/v1/synthesize", req)
		if status != http.StatusOK {
			t.Fatalf("replica %d: %d %s", i, status, body)
		}
		var sr service.SynthesizeResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Cache != "hit" {
			t.Fatalf("replica %d answered cache=%q on round 2, want hit", i, sr.Cache)
		}
		// elapsed_ms reports the cached entry's original production time,
		// which differs per replica by construction; blank it and nothing
		// else before comparing.
		norm := normalizeElapsed(t, body)
		if first == nil {
			first = norm
		} else if !bytes.Equal(first, norm) {
			t.Fatalf("replica %d response differs from replica 0:\n%s\n---\n%s", i, first, norm)
		}
	}
}

// normalizeElapsed zeroes the elapsed_ms field of a JSON body without
// disturbing anything else (decode into a raw map would reorder keys,
// so substitute on the decoded-then-reencoded form for both sides).
func normalizeElapsed(t *testing.T, body []byte) []byte {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	m["elapsed_ms"] = json.RawMessage("0")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestClusterSelectProgramIdentical drives the select path: the same
// inline program answered by each replica must produce identical
// selection results (cost, cycles, checksum — no timing in the body).
func TestClusterSelectProgramIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("riscv synthesis in -short mode")
	}
	lc := bootTest(t, 3, Config{})
	req := service.SelectRequest{Target: "riscv", Program: clProg, VectorSeed: 7}
	var first []byte
	for round := 0; round < 2; round++ {
		for i := 0; i < lc.Len(); i++ {
			status, body := post(t, lc.Replica(i).URL+"/v1/select", req)
			if status != http.StatusOK {
				t.Fatalf("round %d replica %d: %d %s", round, i, status, body)
			}
			var sr service.SelectResponse
			if err := json.Unmarshal(body, &sr); err != nil {
				t.Fatal(err)
			}
			if round == 1 {
				if sr.Cache != "hit" {
					t.Fatalf("round 2 replica %d: cache=%q, want hit", i, sr.Cache)
				}
				if first == nil {
					first = body
				} else if !bytes.Equal(first, body) {
					t.Fatalf("replica %d select response differs:\n%s\n---\n%s", i, first, body)
				}
			}
		}
	}
	var synth uint64
	for i := 0; i < lc.Len(); i++ {
		synth += metricsOf(t, lc.Replica(i).URL).SynthRuns
	}
	if synth != 1 {
		t.Fatalf("fleet ran %d riscv syntheses, want 1", synth)
	}
}

// TestClusterKillDegradesToLocal is acceptance: killing a replica
// degrades the fleet to local fills with zero failed requests, and the
// dead peer's circuit opens.
func TestClusterKillDegradesToLocal(t *testing.T) {
	lc := bootTest(t, 3, Config{BreakerThreshold: 1, BreakerCooldown: time.Hour, HedgeDelay: -1})
	victim := 2
	name := inlineNameOwnedBy(t, lc, victim)
	lc.Kill(victim)

	// Both survivors request the key the dead replica owns: the peer
	// fill fails (connection refused), each falls back to a local
	// synthesis, and the client still gets a full 200.
	for i := 0; i < victim; i++ {
		status, body := post(t, lc.Replica(i).URL+"/v1/synthesize",
			service.SynthesizeRequest{Target: name, Spec: clSpec})
		if status != http.StatusOK {
			t.Fatalf("replica %d failed after peer death: %d %s", i, status, body)
		}
		var sr service.SynthesizeResponse
		if err := json.Unmarshal(body, &sr); err != nil || sr.Rules == 0 {
			t.Fatalf("replica %d: degraded answer has no rules: %s", i, body)
		}
	}
	var synth, peer uint64
	for i := 0; i < victim; i++ {
		m := metricsOf(t, lc.Replica(i).URL)
		synth += m.SynthRuns + m.IncrRuns
		peer += m.PeerFills
	}
	if synth != 2 {
		t.Fatalf("survivors ran %d local syntheses, want 2 (one each)", synth)
	}
	if peer != 0 {
		t.Fatalf("recorded %d peer fills from a dead owner", peer)
	}

	// The survivors' breakers for the dead peer are open (threshold 1).
	resp, err := http.Get(lc.Replica(0).URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Self != lc.Replica(0).URL || len(st.Peers) != 3 {
		t.Fatalf("bad cluster status: %+v", st)
	}
	for _, p := range st.Peers {
		if p.URL == lc.Replica(victim).URL && p.BreakerState != BreakerOpen {
			t.Fatalf("dead peer's breaker state=%d, want open", p.BreakerState)
		}
	}

	// With the circuit open the next cold key owned by the dead replica
	// degrades instantly — no connection attempt, still a 200.
	name2 := inlineNameOwnedBy(t, lc, victim, name)
	status, _ := post(t, lc.Replica(0).URL+"/v1/synthesize",
		service.SynthesizeRequest{Target: name2, Spec: clSpec})
	if status != http.StatusOK {
		t.Fatalf("open-circuit degradation answered %d", status)
	}
}

// TestClusterForwardMode: in forward mode a non-owning replica proxies
// the select request to the owner and relays its bytes.
func TestClusterForwardMode(t *testing.T) {
	if testing.Short() {
		t.Skip("riscv synthesis in -short mode")
	}
	lc := bootTest(t, 3, Config{Mode: ModeForward})
	fp, err := lc.Replica(0).SV.FingerprintRequest("riscv", "", "greedy")
	if err != nil {
		t.Fatal(err)
	}
	owner := lc.Replica(0).Node.OwnerOf(fp)
	ownerIdx, senderIdx := -1, -1
	for i := 0; i < lc.Len(); i++ {
		if lc.Replica(i).URL == owner {
			ownerIdx = i
		} else if senderIdx == -1 {
			senderIdx = i
		}
	}
	if ownerIdx == -1 || senderIdx == -1 {
		t.Fatalf("could not split owner/sender (owner=%s)", owner)
	}

	// Warm the owner, then send the select through a non-owner.
	if status, body := post(t, owner+"/v1/synthesize",
		service.SynthesizeRequest{Target: "riscv"}); status != http.StatusOK {
		t.Fatalf("warm owner: %d %s", status, body)
	}
	req := service.SelectRequest{Target: "riscv", Program: clProg}
	buf, _ := json.Marshal(req)
	resp, err := http.Post(lc.Replica(senderIdx).URL+"/v1/select", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	fwdBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded select: %d %s", resp.StatusCode, fwdBody)
	}
	if got := resp.Header.Get("X-Iseld-Forwarded-To"); got != owner {
		t.Fatalf("X-Iseld-Forwarded-To=%q, want %q", got, owner)
	}
	_, direct := post(t, owner+"/v1/select", req)
	if !bytes.Equal(fwdBody, direct) {
		t.Fatalf("forwarded body differs from owner's direct answer:\n%s\n---\n%s", fwdBody, direct)
	}
	// The selection ran on the owner only: the sender's library cache
	// never materialized the riscv entry.
	if m := metricsOf(t, lc.Replica(senderIdx).URL); m.Selections != 0 {
		t.Fatalf("sender performed %d selections locally in forward mode", m.Selections)
	}
	if m := metricsOf(t, lc.Replica(ownerIdx).URL); m.Selections != 2 {
		t.Fatalf("owner performed %d selections, want 2", m.Selections)
	}
}

// fakePeer is an httptest replica answering /v1/artifact for the hedge
// and breaker unit tests (no real synthesis behind it).
func fakePeer(t *testing.T, delay time.Duration, status int, answer func(req service.FillRequest) service.ArtifactResponse) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/artifact" {
			http.NotFound(w, r)
			return
		}
		var req service.FillRequest
		json.NewDecoder(r.Body).Decode(&req)
		time.Sleep(delay)
		if status != http.StatusOK {
			w.WriteHeader(status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(answer(req))
	}))
	t.Cleanup(ts.Close)
	return ts
}

// hedgeNode builds a Node over [self, two fakes] and returns it plus a
// key whose primary owner is slowURL and whose hedge target is fastURL.
func hedgeNode(t *testing.T, cfg Config, slowURL, fastURL string) (*Node, string) {
	t.Helper()
	sv, err := service.New(service.Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sv.Close)
	cfg.Self = "http://self.invalid"
	cfg.Peers = []string{cfg.Self, slowURL, fastURL}
	node, err := New(sv, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		key := fmt.Sprintf("sha256:%08d", i)
		owners := node.ring.Owners(key, 2)
		if len(owners) == 2 && owners[0] == slowURL && owners[1] == fastURL {
			return node, key
		}
	}
	t.Fatal("no key with the wanted (slow, fast) preference order")
	return nil, ""
}

// TestHedgeWinsOnSlowOwner: a slow owner loses the race to the hedged
// cache-only probe on the next replica.
func TestHedgeWinsOnSlowOwner(t *testing.T) {
	echo := func(req service.FillRequest) service.ArtifactResponse {
		return service.ArtifactResponse{Fingerprint: req.Fingerprint, Library: "lib-text"}
	}
	slow := fakePeer(t, 400*time.Millisecond, http.StatusOK, echo)
	fast := fakePeer(t, 0, http.StatusOK, echo)
	node, key := hedgeNode(t, Config{HedgeDelay: 20 * time.Millisecond}, slow.URL, fast.URL)

	t0 := time.Now()
	fill, err := node.FetchArtifact(context.Background(), service.FillRequest{Fingerprint: key})
	if err != nil {
		t.Fatal(err)
	}
	if fill.Peer != fast.URL {
		t.Fatalf("answer came from %s, want hedge %s", fill.Peer, fast.URL)
	}
	if d := time.Since(t0); d > 300*time.Millisecond {
		t.Fatalf("hedged fetch took %v — raced the slow owner instead of winning", d)
	}
}

// TestHedgeMissFallsBackToOwner: a hedge probe that misses (404) does
// not fail the fetch — the owner's answer is still awaited.
func TestHedgeMissFallsBackToOwner(t *testing.T) {
	echo := func(req service.FillRequest) service.ArtifactResponse {
		return service.ArtifactResponse{Fingerprint: req.Fingerprint, Library: "owner-lib"}
	}
	slow := fakePeer(t, 150*time.Millisecond, http.StatusOK, echo)
	miss := fakePeer(t, 0, http.StatusNotFound, nil)
	node, key := hedgeNode(t, Config{HedgeDelay: 10 * time.Millisecond}, slow.URL, miss.URL)

	fill, err := node.FetchArtifact(context.Background(), service.FillRequest{Fingerprint: key})
	if err != nil {
		t.Fatal(err)
	}
	if fill.Peer != slow.URL || fill.Text != "owner-lib" {
		t.Fatalf("fill = %+v, want the owner's artifact", fill)
	}
	// A 404 is a healthy "not cached" — the miss peer's breaker stays
	// closed.
	if st := node.peer[miss.URL].breaker.State(); st != BreakerClosed {
		t.Fatalf("hedge miss tripped the breaker (state %d)", st)
	}
}

// TestFetchArtifactSelfOwnerIsLocal: owning the key routes to
// ErrLocalFill, the degrade-to-local signal.
func TestFetchArtifactSelfOwnerIsLocal(t *testing.T) {
	sv, err := service.New(service.Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sv.Close)
	node, err := New(sv, Config{Self: "http://self.invalid"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = node.FetchArtifact(context.Background(), service.FillRequest{Fingerprint: "k"})
	if err != service.ErrLocalFill {
		t.Fatalf("single-member fetch returned %v, want ErrLocalFill", err)
	}
}

// TestFingerprintMismatchRejected: an artifact answering the wrong
// fingerprint is refused.
func TestFingerprintMismatchRejected(t *testing.T) {
	bad := fakePeer(t, 0, http.StatusOK, func(req service.FillRequest) service.ArtifactResponse {
		return service.ArtifactResponse{Fingerprint: "sha256:not-what-you-asked-for"}
	})
	other := fakePeer(t, 0, http.StatusNotFound, nil)
	node, key := hedgeNode(t, Config{HedgeDelay: -1}, bad.URL, other.URL)
	_, err := node.FetchArtifact(context.Background(), service.FillRequest{Fingerprint: key})
	if err == nil || !strings.Contains(err.Error(), "answered fingerprint") {
		t.Fatalf("mismatched artifact accepted (err=%v)", err)
	}
}
