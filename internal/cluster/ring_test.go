package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAcrossOrder(t *testing.T) {
	a := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	b := NewRing([]string{"http://c", "http://a", "http://b"}, 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("fp-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %s: owner depends on member order (%s vs %s)",
				key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingOwnersDistinctAndStable(t *testing.T) {
	r := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("fp-%d", i)
		owners := r.Owners(key, 3)
		if len(owners) != 3 {
			t.Fatalf("key %s: got %d owners, want 3", key, len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %s: duplicate owner %s in %v", key, o, owners)
			}
			seen[o] = true
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("key %s: Owners[0]=%s but Owner=%s", key, owners[0], r.Owner(key))
		}
	}
	if got := r.Owners("k", 10); len(got) != 3 {
		t.Fatalf("Owners capped at membership: got %d, want 3", len(got))
	}
}

func TestRingBalance(t *testing.T) {
	members := []string{"http://a", "http://b", "http://c", "http://d"}
	r := NewRing(members, 0)
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("sha256:%064d", i))]++
	}
	for _, m := range members {
		share := float64(counts[m]) / n
		// 64 vnodes keeps a 4-member split well inside [10%, 45%].
		if share < 0.10 || share > 0.45 {
			t.Fatalf("member %s owns %.1f%% of keys — ring badly unbalanced (%v)",
				m, share*100, counts)
		}
	}
}

func TestRingRemovalRemapsOnlyVictimKeys(t *testing.T) {
	full := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	reduced := NewRing([]string{"http://a", "http://b"}, 0)
	moved := 0
	const n = 5000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("fp-%d", i)
		before, after := full.Owner(key), reduced.Owner(key)
		if before != "http://c" && before != after {
			t.Fatalf("key %s moved from surviving member %s to %s", key, before, after)
		}
		if before == "http://c" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("expected some keys owned by the removed member")
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if got := NewRing(nil, 0).Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	one := NewRing([]string{"http://only"}, 0)
	if got := one.Owner("k"); got != "http://only" {
		t.Fatalf("single-member owner = %q", got)
	}
}
