// Package cluster scales the selection service horizontally: a
// consistent-hash ring routes ownership of content-addressed cache
// fingerprints across iseld replicas, cache misses are filled from the
// fingerprint's owner over HTTP (so a cold key is synthesized exactly
// once fleet-wide — the owner's local singleflight collapses every
// replica's concurrent fill), reads are hedged against a second replica
// after a short delay, per-peer circuit breakers stop hammering dead
// peers, and everything degrades to local-only operation when the fleet
// is unreachable: a cluster of one is just iseld.
package cluster

import (
	"fmt"
	"sort"
)

// defaultVNodes is the virtual-node count per member: enough that the
// keyspace split between a handful of replicas stays within a few
// percent of even.
const defaultVNodes = 64

// Ring is an immutable consistent-hash ring over replica base URLs.
// Every member is hashed onto the ring at vnodes points; a key is owned
// by the first member clockwise of the key's hash. Adding or removing
// one member remaps only the keys that member owned — the property that
// keeps a rolling restart from stampeding the whole fleet into
// resynthesis.
type Ring struct {
	vnodes  int
	members []string
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring over members (deduplicated; order-insensitive
// by construction, since placement depends only on member identity).
// vnodes <= 0 picks the default.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	seen := map[string]bool{}
	r := &Ring{vnodes: vnodes}
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		r.members = append(r.members, m)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash:   fnv64a(fmt.Sprintf("%s#%d", m, i)),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by member so placement
		// stays deterministic across replicas.
		return r.points[i].member < r.points[j].member
	})
	sort.Strings(r.members)
	return r
}

// Members returns the distinct members, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Owners returns up to n distinct members in preference order for a
// key: the owner first, then the members next clockwise — the hedge
// targets. n larger than the membership returns every member.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := fnv64a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := map[string]bool{}
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		p := r.points[(i+k)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}

// Owner returns the single owning member for a key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	o := r.Owners(key, 1)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}

// fnv64a is the FNV-1a 64-bit hash with a splitmix64 finalizer. Bare
// FNV-1a barely avalanches its last input bytes — keys differing only
// in a trailing character land a few primes apart and cluster into one
// ring arc — so the finalizer mixes every output bit before the value
// is used for placement.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
