package cluster

import (
	"sync"
	"time"
)

// Breaker states, exposed as a gauge per peer.
const (
	BreakerClosed   = 0 // healthy: requests flow
	BreakerHalfOpen = 1 // cooldown elapsed: one probe in flight
	BreakerOpen     = 2 // tripped: requests rejected locally
)

// breaker is a per-peer circuit breaker: threshold consecutive failures
// open it; while open every Allow is an instant local rejection (the
// caller degrades to a local fill instead of waiting out another
// timeout against a dead peer); after cooldown one probe is admitted
// (half-open) and its outcome closes or re-opens the circuit.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    int
	failures int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 1 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a request may be sent to the peer now. In the
// open state it flips to half-open once the cooldown has elapsed and
// admits exactly one probe.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		return false // a probe is already in flight
	default: // open
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	}
}

// Success records a successful exchange with the peer, closing the
// circuit from any state.
func (b *breaker) Success() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
}

// Failure records a failed exchange. A failed half-open probe re-opens
// immediately; threshold consecutive failures open a closed circuit.
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.state = BreakerOpen
		b.openedAt = time.Now()
		b.probing = false
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = time.Now()
	}
}

// State returns the current state constant.
func (b *breaker) State() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Failures returns the consecutive-failure count.
func (b *breaker) Failures() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.failures
}
