module iselgen

go 1.22
