// Command iselfuzz runs the differential fuzzing harness: random gMIR
// programs through legalize → select → simulate against the gMIR
// interpreter, the greedy vs optimal selection engines against each
// other (selector-diff), mutated ISA specifications against the
// synthesis contract, and random term pairs against the SMT equivalence
// checker. Failures are shrunk to minimal reproducers and written to
// the corpus directory, where `go test ./internal/fuzz` replays them.
//
//	iselfuzz -target aarch64 -n 500 -seed 1
//	iselfuzz -oracle selector-diff -target riscv -budget 2m
//	iselfuzz -oracle smt -n 2000
//	iselfuzz -oracle all -budget 30s -corpus internal/fuzz/testdata/corpus
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"iselgen/internal/fuzz"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "root random seed; every iteration derives from it deterministically")
		n         = flag.Int("n", 500, "iterations per oracle")
		target    = flag.String("target", "aarch64", "select-diff/selector-diff target: aarch64 or riscv")
		oracle    = flag.String("oracle", "select-diff", "oracle to run: select-diff, selector-diff, encode, spec, smt, or all")
		budget    = flag.Duration("budget", 0, "wall-clock budget (0 = unlimited)")
		corpus    = flag.String("corpus", "", "directory for shrunk reproducers (also replayed by go test)")
		synth     = flag.Bool("synth", true, "select against a freshly synthesized library (handwritten fallback)")
		specSynth = flag.Bool("specsynth", false, "differential-check accepted spec mutants (slow)")
	)
	flag.Parse()

	opts := fuzz.Options{
		Seed:      *seed,
		N:         *n,
		Target:    *target,
		Oracle:    *oracle,
		Budget:    *budget,
		CorpusDir: *corpus,
		Synth:     *synth,
		SpecSynth: *specSynth,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}
	start := time.Now()
	sum, err := fuzz.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iselfuzz: %v\n", err)
		os.Exit(2)
	}
	total := 0
	for o, c := range sum.PerOracle {
		fmt.Printf("%-12s %d iterations\n", o+":", c)
		total += c
	}
	el := time.Since(start)
	rate := float64(total) / el.Seconds()
	fmt.Printf("ran %d, skipped %d, failed %d in %v (%.1f iter/s)\n",
		sum.Ran, sum.Skipped, sum.Failed, el.Round(time.Millisecond), rate)
	if sum.Failed > 0 {
		for _, p := range sum.Repros {
			fmt.Printf("repro: %s\n", p)
		}
		os.Exit(1)
	}
}
