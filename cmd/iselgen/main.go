// Command iselgen synthesizes an instruction selection rule library for
// a target from its formal ISA specification — the paper's main
// pipeline. It prints the Table-II-style synthesis breakdown and can
// emit the generated rules in the TableGen-flavoured format of Listing 1.
//
// Usage:
//
//	iselgen -target aarch64|riscv|x86 [-rules out.td] [-inputs N]
//	        [-patterns N] [-workers N] [-summary]
//	iselgen -spec newisa.spec [...]        (inline DSL spec retargeting)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"iselgen/internal/core"
	"iselgen/internal/harness"
	"iselgen/internal/isa"
	"iselgen/internal/isa/x86"
	"iselgen/internal/isel"
	"iselgen/internal/pattern"
	"iselgen/internal/rules"
	"iselgen/internal/spec"
	"iselgen/internal/term"
)

func main() {
	target := flag.String("target", "aarch64", "target: aarch64, riscv, or x86")
	specFile := flag.String("spec", "", "synthesize for an inline DSL spec file instead of a builtin target")
	rulesOut := flag.String("rules", "", "write the loadable rule library to this file")
	tdOut := flag.String("td", "", "write the TableGen-style rule listing to this file")
	inputs := flag.Int("inputs", 0, "test inputs per sequence (0 = default)")
	maxPatterns := flag.Int("patterns", 0, "limit considered patterns (0 = all)")
	workers := flag.Int("workers", 0, "matcher threads (0 = default)")
	summary := flag.Bool("summary", false, "print the library composition summary")
	flag.Parse()

	cfg := core.DefaultConfig()
	if *inputs > 0 {
		cfg.TestInputs = *inputs
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}

	var lib *rules.Library
	var tableII string
	t0 := time.Now()
	if *specFile != "" {
		name := strings.TrimSuffix(filepath.Base(*specFile), filepath.Ext(*specFile))
		var err error
		lib, tableII, err = synthInline(name, *specFile, cfg, *maxPatterns)
		if err != nil {
			fatal(err)
		}
		printResults(lib, name, t0, tableII, *summary, *rulesOut, *tdOut)
		return
	}
	switch *target {
	case "aarch64", "riscv":
		var s *harness.Setup
		var err error
		if *target == "aarch64" {
			s, err = harness.NewAArch64()
		} else {
			s, err = harness.NewRISCV()
		}
		if err != nil {
			fatal(err)
		}
		lib = s.Synthesize(cfg, *maxPatterns)
		tableII = s.TableII(lib)
	case "x86":
		b := term.NewBuilder()
		tgt, err := x86.Load(b)
		if err != nil {
			fatal(err)
		}
		synth := core.New(b, tgt, cfg)
		synth.BuildPool()
		lib = rules.NewLibrary("x86")
		pats := x86Patterns(*maxPatterns)
		synth.Synthesize(pats, lib)
		tableII = fmt.Sprintf("x86: %d sequences, %d rules (index %d, smt %d)\n",
			synth.Stats.Sequences, lib.Len(), synth.Stats.IndexRules, synth.Stats.SMTRules)
	default:
		fatal(fmt.Errorf("unknown target %q", *target))
	}

	printResults(lib, *target, t0, tableII, *summary, *rulesOut, *tdOut)
}

// synthInline runs the pipeline for a DSL spec file — the retargeting
// flow of examples/newisa, from the CLI. The spec is validated up front
// (spec.Check is the same entry point the iseld daemon's inline path
// uses), then synthesized against the shared benchmark pattern corpus.
func synthInline(name, path string, cfg core.Config, maxPatterns int) (*rules.Library, string, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	insts, err := spec.Check(string(src))
	if err != nil {
		return nil, "", err
	}
	b := term.NewBuilder()
	tgt, err := isa.LoadTarget(b, name, string(src), nil, 4)
	if err != nil {
		return nil, "", err
	}
	synth := core.New(b, tgt, cfg)
	synth.BuildPool()
	lib := rules.NewLibrary(name)
	pats := harness.CorpusPatterns(name, maxPatterns)
	synth.Synthesize(pats, lib)
	tableII := fmt.Sprintf("%s: %d instructions, %d sequences, %d rules (index %d, smt %d)\n",
		name, len(insts), synth.Stats.Sequences, lib.Len(),
		synth.Stats.IndexRules, synth.Stats.SMTRules)
	return lib, tableII, nil
}

func printResults(lib *rules.Library, target string, t0 time.Time, tableII string, summary bool, rulesOut, tdOut string) {
	fmt.Printf("synthesized %d rules for %s in %v\n\n", lib.Len(), target,
		time.Since(t0).Round(time.Millisecond))
	fmt.Println(tableII)

	if summary {
		st := lib.Summarize()
		fmt.Printf("by source: %v\nby sequence length: %v\nby pattern size: %v\nrules with immediate constraints: %d\n",
			st.BySource, st.BySeqLen, st.ByPatternSize, st.RulesWithImmCs)
	}
	if rulesOut != "" {
		if err := os.WriteFile(rulesOut, []byte(isel.SaveLibrary(lib)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote loadable rule library to %s\n", rulesOut)
	}
	if tdOut != "" {
		if err := os.WriteFile(tdOut, []byte(lib.Emit()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote TableGen-style listing to %s\n", tdOut)
	}
}

// x86Patterns builds the 32-bit pattern set for the §IX discussion
// experiment (the comparator's simplified spec has no multiplication and
// no 64-bit arithmetic).
func x86Patterns(max int) []*pattern.Pattern {
	var out []*pattern.Pattern
	for _, p := range harness.SeedPatterns() {
		if p.Root.Ty.Bits == 32 || (p.Root.Op != 0 && p.Root.Ty.Bits == 0) {
			out = append(out, p)
		}
	}
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iselgen:", err)
	os.Exit(1)
}
