// Command iselgen synthesizes an instruction selection rule library for
// a target from its formal ISA specification — the paper's main
// pipeline. It prints the Table-II-style synthesis breakdown and can
// emit the generated rules in the TableGen-flavoured format of Listing 1.
//
// Usage:
//
//	iselgen -target aarch64|riscv|x86 [-rules out.td] [-inputs N]
//	        [-patterns N] [-workers N] [-summary]
//	iselgen -spec newisa.spec [...]        (inline DSL spec retargeting)
//	iselgen -spec edited.spec -incremental -from old.rules [...]
//
// With -incremental, the library saved by a previous run (-rules) is
// diffed against the current spec by instruction content fingerprint:
// rules whose supporting instructions are unchanged are re-verified and
// reused without any solver work, and synthesis runs only for the delta.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"iselgen/internal/core"
	"iselgen/internal/harness"
	"iselgen/internal/incr"
	"iselgen/internal/isa"
	"iselgen/internal/isa/x86"
	"iselgen/internal/isel"
	"iselgen/internal/obs"
	"iselgen/internal/pattern"
	"iselgen/internal/rules"
	"iselgen/internal/spec"
	"iselgen/internal/term"
)

func main() {
	target := flag.String("target", "aarch64", "target: aarch64, riscv, or x86")
	specFile := flag.String("spec", "", "synthesize for an inline DSL spec file instead of a builtin target")
	rulesOut := flag.String("rules", "", "write the loadable rule library to this file")
	tdOut := flag.String("td", "", "write the TableGen-style rule listing to this file")
	inputs := flag.Int("inputs", 0, "test inputs per sequence (0 = default)")
	maxPatterns := flag.Int("patterns", 0, "limit considered patterns (0 = all)")
	workers := flag.Int("workers", 0, "matcher threads (0 = ISEL_WORKERS or NumCPU)")
	summary := flag.Bool("summary", false, "print the library composition summary")
	incremental := flag.Bool("incremental", false, "resynthesize incrementally from a prior artifact (-from)")
	fromPath := flag.String("from", "", "prior rule-library artifact to diff against (with -incremental)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file")
	flag.Parse()

	cfg := core.DefaultConfig()
	if *inputs > 0 {
		cfg.TestInputs = *inputs
	}
	cfg.Workers = core.ResolveWorkers(*workers)
	if *traceOut != "" {
		o := obs.New()
		obs.SetDefault(o) // spec parse/symexec spans
		cfg.Obs = o
		defer writeTrace(o, *traceOut)
	}

	if *incremental {
		if *fromPath == "" {
			fatal(fmt.Errorf("-incremental requires -from <artifact>"))
		}
		runIncremental(*target, *specFile, *fromPath, cfg, *maxPatterns, *summary, *rulesOut, *tdOut)
		return
	}

	var lib *rules.Library
	var tgt *isa.Target
	var tableII string
	t0 := time.Now()
	if *specFile != "" {
		name := strings.TrimSuffix(filepath.Base(*specFile), filepath.Ext(*specFile))
		var err error
		lib, tgt, tableII, err = synthInline(name, *specFile, cfg, *maxPatterns)
		if err != nil {
			fatal(err)
		}
		printResults(lib, tgt, name, t0, tableII, *summary, *rulesOut, *tdOut)
		return
	}
	switch *target {
	case "aarch64", "riscv":
		var s *harness.Setup
		var err error
		if *target == "aarch64" {
			s, err = harness.NewAArch64()
		} else {
			s, err = harness.NewRISCV()
		}
		if err != nil {
			fatal(err)
		}
		lib = s.Synthesize(cfg, *maxPatterns)
		tgt = s.ISA
		tableII = s.TableII(lib)
	case "x86":
		b := term.NewBuilder()
		xtgt, err := x86.Load(b)
		if err != nil {
			fatal(err)
		}
		synth := core.New(b, xtgt, cfg)
		synth.BuildPool()
		lib = rules.NewLibrary("x86")
		pats := x86Patterns(*maxPatterns)
		synth.Synthesize(pats, lib)
		tgt = xtgt
		tableII = fmt.Sprintf("x86: %d sequences, %d rules (index %d, smt %d)\n",
			synth.Stats.Sequences, lib.Len(), synth.Stats.IndexRules, synth.Stats.SMTRules)
	default:
		fatal(fmt.Errorf("unknown target %q", *target))
	}

	printResults(lib, tgt, *target, t0, tableII, *summary, *rulesOut, *tdOut)
}

// loadFor materializes the builder, target, and pattern corpus for any
// of the three target kinds (builtin harness target, x86, inline spec)
// without running synthesis — the incremental path decides what to
// synthesize itself.
func loadFor(target, specFile string, maxPatterns int) (*term.Builder, *isa.Target, string, []*pattern.Pattern, error) {
	if specFile != "" {
		name := strings.TrimSuffix(filepath.Base(specFile), filepath.Ext(specFile))
		src, err := os.ReadFile(specFile)
		if err != nil {
			return nil, nil, "", nil, err
		}
		if _, err := spec.Check(string(src)); err != nil {
			return nil, nil, "", nil, err
		}
		b := term.NewBuilder()
		tgt, err := isa.LoadTarget(b, name, string(src), nil, 4)
		if err != nil {
			return nil, nil, "", nil, err
		}
		return b, tgt, name, harness.CorpusPatterns(name, maxPatterns), nil
	}
	switch target {
	case "aarch64", "riscv":
		var s *harness.Setup
		var err error
		if target == "aarch64" {
			s, err = harness.NewAArch64()
		} else {
			s, err = harness.NewRISCV()
		}
		if err != nil {
			return nil, nil, "", nil, err
		}
		return s.B, s.ISA, target, harness.CorpusPatterns(target, maxPatterns), nil
	case "x86":
		b := term.NewBuilder()
		tgt, err := x86.Load(b)
		if err != nil {
			return nil, nil, "", nil, err
		}
		return b, tgt, target, x86Patterns(maxPatterns), nil
	default:
		return nil, nil, "", nil, fmt.Errorf("unknown target %q", target)
	}
}

// runIncremental is the -incremental flow: parse the prior artifact's
// provenance, diff it against the current spec, reuse what survives,
// synthesize the rest, and report the reuse accounting.
func runIncremental(target, specFile, fromPath string, cfg core.Config, maxPatterns int, summary bool, rulesOut, tdOut string) {
	t0 := time.Now()
	b, tgt, name, pats, err := loadFor(target, specFile, maxPatterns)
	if err != nil {
		fatal(err)
	}
	text, err := os.ReadFile(fromPath)
	if err != nil {
		fatal(err)
	}
	art, err := incr.ParseArtifact(string(text))
	if err != nil {
		fatal(err)
	}
	lib, rep, err := incr.Resynthesize(b, tgt, art, incr.Options{Config: cfg, Patterns: pats})
	if err != nil {
		fatal(err)
	}
	d := rep.Delta
	report := fmt.Sprintf(
		"delta: %d changed, %d added, %d removed, %d unchanged instructions\n"+
			"rules: %d in artifact, %d reused (%.0f%%), %d stale (%d failed re-verify), %d resynthesized, %d improved\n"+
			"work:  %d SMT queries, full pool rebuilt: %v\n",
		len(d.Changed), len(d.Added), len(d.Removed), d.Unchanged,
		rep.ArtifactRules, rep.Reused, 100*rep.ReusedFraction(),
		rep.Stale, rep.ReverifyFailed, rep.Resynthesized, rep.Improved,
		rep.SMTQueries, rep.FullPool)
	printResults(lib, tgt, name, t0, report, summary, rulesOut, tdOut)
}

// synthInline runs the pipeline for a DSL spec file — the retargeting
// flow of examples/newisa, from the CLI. The spec is validated up front
// (spec.Check is the same entry point the iseld daemon's inline path
// uses), then synthesized against the shared benchmark pattern corpus.
func synthInline(name, path string, cfg core.Config, maxPatterns int) (*rules.Library, *isa.Target, string, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, "", err
	}
	insts, err := spec.Check(string(src))
	if err != nil {
		return nil, nil, "", err
	}
	b := term.NewBuilder()
	tgt, err := isa.LoadTarget(b, name, string(src), nil, 4)
	if err != nil {
		return nil, nil, "", err
	}
	synth := core.New(b, tgt, cfg)
	synth.BuildPool()
	lib := rules.NewLibrary(name)
	pats := harness.CorpusPatterns(name, maxPatterns)
	synth.Synthesize(pats, lib)
	tableII := fmt.Sprintf("%s: %d instructions, %d sequences, %d rules (index %d, smt %d)\n",
		name, len(insts), synth.Stats.Sequences, lib.Len(),
		synth.Stats.IndexRules, synth.Stats.SMTRules)
	return lib, tgt, tableII, nil
}

func printResults(lib *rules.Library, tgt *isa.Target, target string, t0 time.Time, tableII string, summary bool, rulesOut, tdOut string) {
	fmt.Printf("synthesized %d rules for %s in %v\n\n", lib.Len(), target,
		time.Since(t0).Round(time.Millisecond))
	fmt.Println(tableII)

	if summary {
		st := lib.Summarize()
		fmt.Printf("by source: %v\nby sequence length: %v\nby pattern size: %v\nrules with immediate constraints: %d\n",
			st.BySource, st.BySeqLen, st.ByPatternSize, st.RulesWithImmCs)
	}
	if rulesOut != "" {
		// SaveLibraryFor stamps every instruction's content fingerprint
		// into the artifact header, which is what -incremental -from
		// diffs against after a spec edit.
		if err := os.WriteFile(rulesOut, []byte(isel.SaveLibraryFor(lib, tgt)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote loadable rule library to %s\n", rulesOut)
	}
	if tdOut != "" {
		if err := os.WriteFile(tdOut, []byte(lib.Emit()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote TableGen-style listing to %s\n", tdOut)
	}
}

// x86Patterns builds the 32-bit pattern set for the §IX discussion
// experiment (the comparator's simplified spec has no multiplication and
// no 64-bit arithmetic).
func x86Patterns(max int) []*pattern.Pattern {
	var out []*pattern.Pattern
	for _, p := range harness.SeedPatterns() {
		if p.Root.Ty.Bits == 32 || (p.Root.Op != 0 && p.Root.Ty.Bits == 0) {
			out = append(out, p)
		}
	}
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// writeTrace dumps the recorded spans as Chrome trace-event JSON
// (chrome://tracing / Perfetto).
func writeTrace(o *obs.Obs, path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := o.Trace.WriteTraceJSON(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote trace (%d spans) to %s\n", len(o.Trace.Snapshot()), path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iselgen:", err)
	os.Exit(1)
}
