// Command iseldump inspects the synthesis machinery: instruction
// semantics as derived from the spec DSL, canonical forms of terms, the
// pattern corpus, and selected machine code for a workload.
//
// Usage:
//
//	iseldump -target aarch64 -inst ADDXrs_lsl      # effect terms
//	iseldump -target aarch64 -canon ADDXrs_lsl     # canonical form
//	iseldump -target riscv -corpus 30              # top corpus patterns
//	iseldump -target aarch64 -mir x264_sad         # selected machine code
//	iseldump -target riscv -mir x264_sad -disasm   # ... plus encoded bytes
//	iseldump -target riscv -provenance             # per-rule provenance
//	iseldump -target aarch64 -rules                # per-rule cost table
//
// -disasm assembles the selected function with the spec-derived encoder
// and prints, per emitted instruction, its address, machine bytes, and
// the decoded mnemonic as the disassembler reads it back — so what the
// selector emitted and what the bytes say can be eyeballed side by
// side.
//
// -provenance synthesizes the target's library and prints one line per
// rule — pattern key, proof origin, and each supporting instruction with
// its content fingerprint — sorted, so two dumps diff cleanly.
//
// -rules synthesizes the library under the target's cost model and
// prints one line per rule — pattern key, the legacy cost (operand
// count), the model cost vector "latency,size", and the replacement
// sequence — sorted, so two dumps diff cleanly.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"iselgen/internal/bench"
	"iselgen/internal/canon"
	"iselgen/internal/core"
	"iselgen/internal/enc"
	"iselgen/internal/harness"
	"iselgen/internal/isa"
	"iselgen/internal/isel"
)

func main() {
	target := flag.String("target", "aarch64", "target: aarch64 or riscv")
	instName := flag.String("inst", "", "print the effect terms of an instruction")
	canonName := flag.String("canon", "", "print the canonical form of an instruction's effects")
	corpus := flag.Int("corpus", 0, "print the top N corpus patterns")
	mirOf := flag.String("mir", "", "print the handwritten backend's machine code for a workload")
	provenance := flag.Bool("provenance", false, "synthesize and print each rule's provenance (stable order)")
	rulesDump := flag.Bool("rules", false, "synthesize and print each rule's legacy + model cost (stable order)")
	disasm := flag.Bool("disasm", false, "with -mir: assemble the selection and print bytes + decoded mnemonics")
	patterns := flag.Int("patterns", 0, "limit corpus patterns for -provenance (0 = all)")
	flag.Parse()

	var s *harness.Setup
	var err error
	switch *target {
	case "aarch64":
		s, err = harness.NewAArch64()
	case "riscv":
		s, err = harness.NewRISCV()
	default:
		err = fmt.Errorf("unknown target %q", *target)
	}
	if err != nil {
		fatal(err)
	}

	switch {
	case *instName != "":
		inst := mustInst(s, *instName)
		fmt.Printf("%s (%d operands, latency %d):\n", inst.Name, len(inst.Operands), inst.Latency)
		for _, op := range inst.Operands {
			fmt.Printf("  operand %s: %s%d\n", op.Name, op.Kind, op.Width)
		}
		for _, e := range inst.Effects {
			fmt.Printf("  %s effect: %s\n", e.Kind, e.T)
		}

	case *canonName != "":
		inst := mustInst(s, *canonName)
		cx := canon.NewCtx()
		for _, e := range inst.Effects {
			fmt.Printf("%s %s effect:\n  raw:   %s\n  canon: %s\n",
				inst.Name, e.Kind, e.T, cx.Canon(e.T))
		}

	case *corpus > 0:
		for i, p := range harness.CorpusPatterns(s.Name, *corpus) {
			if i >= *corpus {
				break
			}
			fmt.Printf("%3d  %s\n", i+1, p)
		}

	case *provenance:
		lib := s.Synthesize(core.DefaultConfig(), *patterns)
		var lines []string
		for _, r := range lib.Rules {
			parts := []string{r.Pattern.Key(), r.Source}
			for _, p := range r.Prov {
				parts = append(parts, fmt.Sprintf("%s=%s", p.Name, p.FP[:16]))
			}
			lines = append(lines, strings.Join(parts, "\t"))
		}
		// Sorted output: library order varies with worker scheduling, but
		// two dumps of the same spec + config must diff cleanly.
		sort.Strings(lines)
		for _, l := range lines {
			fmt.Println(l)
		}

	case *rulesDump:
		model, merr := harness.CostModel(s.Name)
		if merr != nil {
			fatal(merr)
		}
		cfg := core.DefaultConfig()
		cfg.CostModel = model
		lib := s.Synthesize(cfg, *patterns)
		var lines []string
		for _, r := range lib.Rules {
			names := make([]string, len(r.Seq.Insts))
			for i, inst := range r.Seq.Insts {
				names[i] = inst.Name
			}
			lines = append(lines, fmt.Sprintf("%s\tlegacy=%d\tmodel=%s\t%s",
				r.Pattern.Key(), r.Cost(), r.EffCost(), strings.Join(names, ";")))
		}
		// Sorted for the same reason as -provenance: stable diffs.
		sort.Strings(lines)
		fmt.Printf("# %s cost model %s — %d rules\n", s.Name, model.Version(), len(lines))
		for _, l := range lines {
			fmt.Println(l)
		}

	case *mirOf != "":
		for _, w := range bench.Suite(1) {
			if w.Name != *mirOf {
				continue
			}
			f := w.Build()
			isel.Prepare(f, s.Name)
			mf, rep := s.Handwritten.Select(f)
			if rep.Fallback {
				fatal(fmt.Errorf("fallback: %s", rep.FallbackReason))
			}
			fmt.Print(mf)
			if *disasm {
				c, cerr := enc.NewCodec(s.ISA)
				if cerr != nil {
					fatal(cerr)
				}
				img, aerr := enc.NewAssembler(c).Assemble(mf)
				if aerr != nil {
					fatal(aerr)
				}
				fmt.Printf("\n; %d bytes at %#x\n", len(img.Code), img.Base)
				for _, ln := range c.Disassemble(img.Code, img.Base) {
					fmt.Printf("%#8x:  %-12s %s\n", ln.Addr, enc.HexBytes(ln.Bytes), ln.Text)
				}
			}
			return
		}
		fatal(fmt.Errorf("unknown workload %q", *mirOf))

	default:
		flag.Usage()
	}
}

func mustInst(s *harness.Setup, name string) *isa.Instruction {
	inst := s.ISA.ByName(name)
	if inst == nil {
		fatal(fmt.Errorf("unknown instruction %q", name))
	}
	return inst
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iseldump:", err)
	os.Exit(1)
}
