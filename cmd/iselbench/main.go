// Command iselbench reproduces the paper's evaluation (§VIII): it
// synthesizes a rule library, compiles the SPEC-CPU-2017-Integer-analog
// workload suite with every backend, simulates the generated code, and
// prints the figures and tables:
//
//	-fig9 / -fig11   normalized runtimes (target-selected via -target)
//	-table3          GlobalISel-fallback accounting
//	-fig6            pattern / sequence length distributions
//	-sizes           binary-size comparison (§VIII-C)
//
// Usage: iselbench -target aarch64|riscv [-scale N] [...]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"iselgen/internal/core"
	"iselgen/internal/harness"
)

func main() {
	target := flag.String("target", "aarch64", "target: aarch64 or riscv")
	scale := flag.Int("scale", 1, "workload scale factor")
	fig6 := flag.Bool("fig6", false, "print length distributions (Fig. 6)")
	table3 := flag.Bool("table3", false, "print fallback table (Table III)")
	sizes := flag.Bool("sizes", false, "print binary sizes (§VIII-C)")
	flag.Parse()

	var s *harness.Setup
	var err error
	switch *target {
	case "aarch64":
		s, err = harness.NewAArch64()
	case "riscv":
		s, err = harness.NewRISCV()
	default:
		err = fmt.Errorf("unknown target %q", *target)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "iselbench:", err)
		os.Exit(1)
	}

	fmt.Printf("synthesizing %s rule library...\n", s.Name)
	lib := s.Synthesize(core.DefaultConfig(), 0)
	fmt.Printf("%d rules\n\n", lib.Len())

	if *fig6 {
		fmt.Println(harness.Fig6(s, lib))
		return
	}

	rows, err := s.RunSuite(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iselbench:", err)
		os.Exit(1)
	}

	if *table3 {
		fmt.Println(harness.TableIII(rows))
		return
	}
	if *sizes {
		fmt.Println(harness.SizeTable(rows))
		return
	}

	figName := "Fig. 9"
	if s.Name == "riscv" {
		figName = "Fig. 11"
	}
	fmt.Printf("%s analog — runtime normalized to the SelectionDAG analog (%s, scale %d)\n\n",
		figName, s.Name, *scale)
	norm := harness.Normalized(rows, "selectiondag")
	var workloads []string
	for w := range norm {
		workloads = append(workloads, w)
	}
	sort.Strings(workloads)
	backends := []string{"selectiondag", "globalisel", "fastisel", "synth"}
	fmt.Printf("%-16s", "")
	for _, bk := range backends {
		if _, ok := norm[workloads[0]][bk]; ok {
			fmt.Printf(" %12s", bk)
		}
	}
	fmt.Println()
	for _, w := range workloads {
		fmt.Printf("%-16s", w)
		for _, bk := range backends {
			if v, ok := norm[w][bk]; ok {
				fmt.Printf(" %12.4f", v)
			}
		}
		fmt.Println()
	}
	fmt.Printf("%-16s", "geomean")
	for _, bk := range backends {
		if g := harness.GeoMean(norm, bk); g > 0 {
			fmt.Printf(" %12.4f", g)
		}
	}
	fmt.Println()
}
