// Command iselbench reproduces the paper's evaluation (§VIII): it
// synthesizes a rule library, compiles the SPEC-CPU-2017-Integer-analog
// workload suite with every backend, simulates the generated code, and
// prints the figures and tables:
//
//	-fig9 / -fig11   normalized runtimes (target-selected via -target)
//	-table3          GlobalISel-fallback accounting
//	-fig6            pattern / sequence length distributions
//	-sizes           binary-size comparison (§VIII-C)
//	-json            machine-readable results (rows + normalized + geomeans)
//	-synthjson       synthesis timing baseline (both selection targets):
//	                 sequential vs parallel full synthesis (proven
//	                 byte-identical), counterexample-screen accounting,
//	                 and the incremental floor; -gate-full-ms N fails the
//	                 run when aarch64 full synthesis exceeds N ms (the CI
//	                 regression gate); see EXPERIMENTS.md for the schema
//	-cost            attach the target cost model: rules are ranked by the
//	                 model, the simulator charges model latencies, and the
//	                 optimal DP selector ("synthopt") joins the tables
//	-costjson        greedy-vs-optimal cost baseline (both targets): static
//	                 and dynamic cost per workload, geomean dynamic delta,
//	                 and a selector-diff sweep of the checked-in fuzz corpus
//	                 (-corpus); the BENCH_cost.json schema in EXPERIMENTS.md
//	-trace FILE      record the run's pipeline spans as Chrome trace-event
//	                 JSON (synthesis stages, per-pattern spans, selection)
//	-obsjson         observability-overhead baseline (BENCH_obs.json):
//	                 synthesis with observability off vs on, the
//	                 estimated disabled-path overhead (distributed-
//	                 tracing calls included) guarded under 2%, and a
//	                 two-replica fleet-trace sample: one traced
//	                 cross-node request assembled into a single trace,
//	                 plus the latency-histogram exemplar coverage
//	-encjson         machine-encoding baseline (BENCH_enc.json): per target,
//	                 the workload suite is selected and assembled to bytes,
//	                 every instruction is round-trip-verified (decode +
//	                 re-encode byte identity), and encode/decode throughput
//	                 is measured in MB/s
//
// Usage: iselbench -target aarch64|riscv [-scale N] [-workers N] [-json] [...]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"slices"
	"sort"
	"strings"
	"time"

	"math"

	"iselgen/internal/bench"
	"iselgen/internal/cluster"
	"iselgen/internal/core"
	"iselgen/internal/enc"
	"iselgen/internal/fuzz"
	"iselgen/internal/harness"
	"iselgen/internal/incr"
	"iselgen/internal/isel"
	"iselgen/internal/obs"
	"iselgen/internal/service"
	"iselgen/internal/smt"
	"iselgen/internal/solver"

	"path/filepath"
)

func main() {
	target := flag.String("target", "aarch64", "target: aarch64 or riscv")
	scale := flag.Int("scale", 1, "workload scale factor")
	workers := flag.Int("workers", 0, "synthesis matcher threads (0 = default)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	fig6 := flag.Bool("fig6", false, "print length distributions (Fig. 6)")
	table3 := flag.Bool("table3", false, "print fallback table (Table III)")
	sizes := flag.Bool("sizes", false, "print binary sizes (§VIII-C)")
	synthJSON := flag.Bool("synthjson", false, "emit the full-vs-incremental synthesis baseline JSON")
	withCost := flag.Bool("cost", false, "attach the target cost model (adds the synthopt backend)")
	costJSON := flag.Bool("costjson", false, "emit the greedy-vs-optimal cost baseline JSON (both targets)")
	corpus := flag.String("corpus", "internal/fuzz/testdata/corpus", "fuzz corpus swept by -costjson")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file")
	obsJSON := flag.Bool("obsjson", false, "emit the observability-overhead baseline JSON (BENCH_obs.json) and enforce the disabled-overhead guard")
	encJSON := flag.Bool("encjson", false, "emit the machine-encoding baseline JSON (BENCH_enc.json): round-trip counts and encode/decode throughput")
	gateFullMS := flag.Float64("gate-full-ms", 0, "with -synthjson: fail if aarch64 full_synth_ms exceeds this (0 = no gate)")
	gateWarmMS := flag.Float64("gate-warm-ms", 0, "with -synthjson: fail if aarch64 warm_full_synth_ms exceeds this (0 = no gate)")
	journalStats := flag.String("journal-stats", "", "with -synthjson: write the per-target solver journal stats JSON to this file")
	flag.Parse()

	if *synthJSON {
		emitSynthJSON(*workers, *gateFullMS, *gateWarmMS, *journalStats)
		return
	}
	if *costJSON {
		emitCostJSON(*workers, *corpus)
		return
	}
	if *obsJSON {
		emitObsJSON(*workers)
		return
	}
	if *encJSON {
		emitEncJSON()
		return
	}

	var s *harness.Setup
	var err error
	switch *target {
	case "aarch64":
		s, err = harness.NewAArch64()
	case "riscv":
		s, err = harness.NewRISCV()
	default:
		err = fmt.Errorf("unknown target %q", *target)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "iselbench:", err)
		os.Exit(1)
	}

	cfg := core.DefaultConfig()
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *withCost {
		model, merr := harness.CostModel(*target)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "iselbench:", merr)
			os.Exit(1)
		}
		cfg.CostModel = model
	}
	var o *obs.Obs
	if *traceOut != "" {
		o = obs.New()
		obs.SetDefault(o) // spec parse/symexec spans
		cfg.Obs = o
		defer writeTrace(o, *traceOut)
	}

	if !*jsonOut {
		fmt.Printf("synthesizing %s rule library...\n", s.Name)
	}
	t0 := time.Now()
	lib := s.Synthesize(cfg, 0)
	synthElapsed := time.Since(t0)
	if o != nil {
		s.AttachObs(o) // selection spans + decision provenance too
	}
	if !*jsonOut {
		fmt.Printf("%d rules\n\n", lib.Len())
	}

	if *fig6 {
		fmt.Println(harness.Fig6(s, lib))
		return
	}

	rows, err := s.RunSuite(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iselbench:", err)
		os.Exit(1)
	}

	if *jsonOut {
		emitJSON(s, lib.Len(), synthElapsed, *scale, rows)
		return
	}

	if *table3 {
		fmt.Println(harness.TableIII(rows))
		return
	}
	if *sizes {
		fmt.Println(harness.SizeTable(rows))
		return
	}

	figName := "Fig. 9"
	if s.Name == "riscv" {
		figName = "Fig. 11"
	}
	fmt.Printf("%s analog — runtime normalized to the SelectionDAG analog (%s, scale %d)\n\n",
		figName, s.Name, *scale)
	norm := harness.Normalized(rows, "selectiondag")
	var workloads []string
	for w := range norm {
		workloads = append(workloads, w)
	}
	sort.Strings(workloads)
	backends := []string{"selectiondag", "globalisel", "fastisel", "synth", "synthopt"}
	fmt.Printf("%-16s", "")
	for _, bk := range backends {
		if _, ok := norm[workloads[0]][bk]; ok {
			fmt.Printf(" %12s", bk)
		}
	}
	fmt.Println()
	for _, w := range workloads {
		fmt.Printf("%-16s", w)
		for _, bk := range backends {
			if v, ok := norm[w][bk]; ok {
				fmt.Printf(" %12.4f", v)
			}
		}
		fmt.Println()
	}
	fmt.Printf("%-16s", "geomean")
	for _, bk := range backends {
		if g := harness.GeoMean(norm, bk); g > 0 {
			fmt.Printf(" %12.4f", g)
		}
	}
	fmt.Println()
}

// benchReport is the -json output: everything the tables print, in a
// shape a perf-trajectory tracker can diff across commits.
type benchReport struct {
	Target     string                        `json:"target"`
	Scale      int                           `json:"scale"`
	Rules      int                           `json:"rules"`
	SynthMS    float64                       `json:"synth_ms"`
	Stages     core.StageStats               `json:"synth_stages"`
	Rows       []benchRow                    `json:"rows"`
	Normalized map[string]map[string]float64 `json:"normalized"`
	Geomean    map[string]float64            `json:"geomean"`
	// FuzzThroughput is programs/second through the differential-fuzzing
	// pipeline (generate + select + simulate) against the synthesized
	// backend — the sustained rate iselfuzz achieves on this machine.
	FuzzThroughput float64 `json:"fuzz_throughput"`
}

type benchRow struct {
	Workload string  `json:"workload"`
	Backend  string  `json:"backend"`
	Cycles   int64   `json:"cycles"`
	Insts    int64   `json:"insts"`
	Size     int     `json:"size"`
	Fallback bool    `json:"fallback,omitempty"`
	HookPct  float64 `json:"hook_pct,omitempty"`
}

// synthBaseline is one row of the -synthjson output: the same synthesis
// run in parallel (default worker pool) and sequentially (Workers=1),
// proven byte-identical, and then incrementally from its own artifact (a
// no-op delta — the floor of incremental cost, every rule reused, no
// solver). The cex_* fields account for the counterexample screen during
// the parallel run.
type synthBaseline struct {
	Target           string  `json:"target"`
	Rules            int     `json:"rules"`
	Workers          int     `json:"workers"`
	FullSynthMS      float64 `json:"full_synth_ms"`
	SeqFullSynthMS   float64 `json:"seq_full_synth_ms"`
	FingerprintMatch bool    `json:"fingerprint_match"`
	IncrSynthMS      float64 `json:"incr_synth_ms"`
	Speedup          float64 `json:"speedup"`
	Reused           int     `json:"reused"`
	ReusedFraction   float64 `json:"reused_fraction"`
	Resynthesized    int     `json:"resynthesized"`
	IncrSMTQueries   int64   `json:"incr_smt_queries"`
	CexScreens       int64   `json:"cex_screens"`
	CexCacheHits     int64   `json:"cex_cache_hits"`
	CexHitRate       float64 `json:"cex_hit_rate"`
	SMTSkipped       int64   `json:"smt_skipped"`
	SMTQueries       int64   `json:"smt_queries"`
	// The warm leg simulates a daemon restart: the in-memory verdict memo
	// is wiped, the journal the parallel run wrote is replayed, and the
	// full synthesis runs again. WarmBitBlasts must be zero — every
	// equivalence verdict answered by the memo, none re-solved.
	WarmFullSynthMS    float64 `json:"warm_full_synth_ms"`
	MemoHits           int64   `json:"memo_hits"`
	WarmBitBlasts      int64   `json:"warm_bit_blasts"`
	MemoJournalEntries int64   `json:"memo_journal_entries"`
}

// ruleFingerprints extracts the sorted rule-line fingerprint set from a
// saved artifact (the #% header carries builder-dependent provenance the
// comparison must ignore; rule lines are content-only by construction).
func ruleFingerprints(artifact string) []string {
	var out []string
	for _, ln := range strings.Split(artifact, "\n") {
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		out = append(out, ln)
	}
	sort.Strings(out)
	return out
}

// emitSynthJSON measures, for both selection targets: a sequential
// (Workers=1) full synthesis, a parallel full synthesis with the default
// worker pool — each from a cold counterexample cache and a cold verdict
// memo — an incremental self-resynthesis from the parallel run's
// artifact on a fresh builder, and a warm full synthesis that simulates
// a daemon restart (in-memory memo wiped, the journal the parallel run
// wrote replayed from disk). The parallel library must be byte-identical
// to the sequential one, and the warm one to both; the warm run must do
// zero bit-blasts — for unchanged instructions every verdict comes from
// the replayed memo. Any divergence exits nonzero, as does an aarch64
// full synthesis slower than gateFullMS or a warm synthesis slower than
// gateWarmMS (0 = no gate). The output is the BENCH_synth.json baseline;
// journalStatsPath, when set, additionally receives the per-target
// solver-journal accounting (the CI artifact).
func emitSynthJSON(workers int, gateFullMS, gateWarmMS float64, journalStatsPath string) {
	load := func(name string) *harness.Setup {
		var s *harness.Setup
		var err error
		if name == "aarch64" {
			s, err = harness.NewAArch64()
		} else {
			s, err = harness.NewRISCV()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "iselbench:", err)
			os.Exit(1)
		}
		return s
	}
	jdir, err := os.MkdirTemp("", "iselbench-solver-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "iselbench:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(jdir)
	var out []synthBaseline
	journals := map[string]solver.JournalStats{}
	for _, name := range []string{"aarch64", "riscv"} {
		jpath := filepath.Join(jdir, name+".journal")

		// Sequential reference run: cold counterexample cache, cold
		// verdict memo, no journal — the schedule-independence baseline.
		seqCfg := core.DefaultConfig()
		seqCfg.Workers = 1
		sSeq := load(name)
		solver.Shared.DetachJournal()
		solver.Shared.Reset()
		smt.Cex.Reset()
		tSeq := time.Now()
		seqLib := sSeq.Synthesize(seqCfg, 0)
		seqMS := float64(time.Since(tSeq).Nanoseconds()) / 1e6
		seqArt := isel.SaveLibraryFor(seqLib, sSeq.ISA)

		// Parallel run, also from a cold cache and cold memo (hits below
		// are earned within the run, not inherited from the sequential
		// pass) — but journaling its verdicts, so the warm leg below can
		// replay them the way a restarted daemon would.
		cfg := core.DefaultConfig()
		cfg.Workers = core.ResolveWorkers(workers)
		s := load(name)
		solver.Shared.Reset()
		if err := solver.Shared.AttachJournal(jpath); err != nil {
			fmt.Fprintln(os.Stderr, "iselbench:", err)
			os.Exit(1)
		}
		smt.Cex.Reset()
		t0 := time.Now()
		lib := s.Synthesize(cfg, 0)
		fullMS := float64(time.Since(t0).Nanoseconds()) / 1e6
		parArt := isel.SaveLibraryFor(lib, s.ISA)
		st := s.Synther.Stats

		seqFPs, parFPs := ruleFingerprints(seqArt), ruleFingerprints(parArt)
		fpMatch := slices.Equal(seqFPs, parFPs) && seqArt == parArt
		if !fpMatch {
			fmt.Fprintf(os.Stderr,
				"iselbench: %s: parallel library (%d rules) differs from sequential (%d rules) — synthesis must be schedule-independent\n",
				name, lib.Len(), seqLib.Len())
			os.Exit(1)
		}

		art, err := incr.ParseArtifact(parArt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iselbench:", err)
			os.Exit(1)
		}
		s2 := load(name)
		icfg := cfg
		icfg.ExtraSequences = harness.ExtraSequences(name)
		t1 := time.Now()
		lib2, rep, err := incr.Resynthesize(s2.B, s2.ISA, art,
			incr.Options{Config: icfg, Patterns: harness.CorpusPatterns(name, 0)})
		if err != nil {
			fmt.Fprintln(os.Stderr, "iselbench:", err)
			os.Exit(1)
		}
		incrMS := float64(time.Since(t1).Nanoseconds()) / 1e6
		if lib2.Len() != lib.Len() {
			fmt.Fprintf(os.Stderr, "iselbench: incremental library has %d rules, full has %d\n",
				lib2.Len(), lib.Len())
			os.Exit(1)
		}
		// Warm leg: simulate a daemon restart. Forget every in-memory
		// verdict, replay the journal the parallel run just wrote, and
		// run the full synthesis again on a fresh builder. Unchanged
		// instructions must be answered entirely from the memo: zero
		// bit-blasts, and the artifact byte-identical to the cold runs.
		solver.Shared.Reset()
		smt.Cex.Reset()
		if err := solver.Shared.AttachJournal(jpath); err != nil {
			fmt.Fprintln(os.Stderr, "iselbench:", err)
			os.Exit(1)
		}
		s3 := load(name)
		t2 := time.Now()
		warmLib := s3.Synthesize(cfg, 0)
		warmMS := float64(time.Since(t2).Nanoseconds()) / 1e6
		wst := s3.Synther.Stats
		if warmArt := isel.SaveLibraryFor(warmLib, s3.ISA); warmArt != parArt {
			fmt.Fprintf(os.Stderr,
				"iselbench: %s: warm library (%d rules) differs from cold (%d rules) — memoization must be verdict-preserving\n",
				name, warmLib.Len(), lib.Len())
			os.Exit(1)
		}
		if wst.BitBlasts != 0 {
			fmt.Fprintf(os.Stderr,
				"iselbench: %s: warm synthesis bit-blasted %d queries; every verdict for an unchanged spec must come from the memo\n",
				name, wst.BitBlasts)
			os.Exit(1)
		}
		if wst.SMTQueries > 0 && wst.MemoHits == 0 {
			fmt.Fprintf(os.Stderr, "iselbench: %s: warm synthesis made %d SMT queries but hit the memo zero times\n",
				name, wst.SMTQueries)
			os.Exit(1)
		}
		js := solver.Shared.Journal()
		journals[name] = js
		solver.Shared.DetachJournal()

		hitRate := 0.0
		if st.CexScreens > 0 {
			hitRate = float64(st.CexHits) / float64(st.CexScreens)
		}
		out = append(out, synthBaseline{
			Target:           name,
			Rules:            lib.Len(),
			Workers:          cfg.Workers,
			FullSynthMS:      fullMS,
			SeqFullSynthMS:   seqMS,
			FingerprintMatch: fpMatch,
			IncrSynthMS:      incrMS,
			Speedup:          fullMS / incrMS,
			Reused:           rep.Reused,
			ReusedFraction:   rep.ReusedFraction(),
			Resynthesized:    rep.Resynthesized,
			IncrSMTQueries:   rep.SMTQueries,
			CexScreens:       st.CexScreens,
			CexCacheHits:     st.CexHits,
			CexHitRate:       hitRate,
			SMTSkipped:       st.SMTSkipped,
			SMTQueries:       st.SMTQueries,

			WarmFullSynthMS:    warmMS,
			MemoHits:           wst.MemoHits,
			WarmBitBlasts:      wst.BitBlasts,
			MemoJournalEntries: js.Entries,
		})
		if name == "aarch64" && gateFullMS > 0 && fullMS > gateFullMS {
			fmt.Fprintf(os.Stderr,
				"iselbench: aarch64 full synthesis took %.0fms, over the %.0fms gate — the speedup regressed\n",
				fullMS, gateFullMS)
			os.Exit(1)
		}
		if name == "aarch64" && gateWarmMS > 0 && warmMS > gateWarmMS {
			fmt.Fprintf(os.Stderr,
				"iselbench: aarch64 warm synthesis took %.0fms, over the %.0fms gate — the verdict memo regressed\n",
				warmMS, gateWarmMS)
			os.Exit(1)
		}
	}
	if journalStatsPath != "" {
		data, err := json.MarshalIndent(journals, "", "  ")
		if err == nil {
			err = os.WriteFile(journalStatsPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "iselbench:", err)
			os.Exit(1)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "iselbench:", err)
		os.Exit(1)
	}
}

// costRow is one workload of the -costjson output: the greedy and
// optimal selections of the same synthesized library, measured both
// statically (model cost of the emitted code) and dynamically
// (simulated cycles under model latencies).
type costRow struct {
	Workload      string  `json:"workload"`
	GreedyStatic  string  `json:"greedy_static"`
	OptimalStatic string  `json:"optimal_static"`
	GreedyCycles  int64   `json:"greedy_cycles"`
	OptimalCycles int64   `json:"optimal_cycles"`
	DynamicDelta  float64 `json:"dynamic_delta"`
}

// costReport is one target of the -costjson output (BENCH_cost.json).
type costReport struct {
	Target        string    `json:"target"`
	CostVersion   string    `json:"cost_version"`
	Rules         int       `json:"rules"`
	Rows          []costRow `json:"rows"`
	GeomeanDelta  float64   `json:"geomean_dynamic_delta"`
	CorpusChecked int       `json:"corpus_checked"`
	CorpusSkipped int       `json:"corpus_skipped"`
}

// emitCostJSON measures, for both selection targets, the greedy and
// optimal selectors over the same synthesized library, enforces the
// optimal engine's static guarantee on every workload and every
// select-diff program in the checked-in fuzz corpus, and emits the
// BENCH_cost.json baseline.
func emitCostJSON(workers int, corpusDir string) {
	var out []costReport
	for _, name := range []string{"aarch64", "riscv"} {
		model, err := harness.CostModel(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iselbench:", err)
			os.Exit(1)
		}
		var s *harness.Setup
		if name == "aarch64" {
			s, err = harness.NewAArch64()
		} else {
			s, err = harness.NewRISCV()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "iselbench:", err)
			os.Exit(1)
		}
		cfg := core.DefaultConfig()
		if workers > 0 {
			cfg.Workers = workers
		}
		cfg.CostModel = model
		lib := s.Synthesize(cfg, 0)
		rows, err := s.RunSuite(1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iselbench:", err)
			os.Exit(1)
		}
		byWorkload := map[string]map[string]harness.Row{}
		for _, r := range rows {
			if byWorkload[r.Workload] == nil {
				byWorkload[r.Workload] = map[string]harness.Row{}
			}
			byWorkload[r.Workload][r.Backend] = r
		}
		var workloads []string
		for w := range byWorkload {
			workloads = append(workloads, w)
		}
		sort.Strings(workloads)
		rep := costReport{Target: name, CostVersion: model.Version(), Rules: lib.Len()}
		logSum, n := 0.0, 0
		for _, w := range workloads {
			g, gok := byWorkload[w]["synth"]
			o, ook := byWorkload[w]["synthopt"]
			if !gok || !ook {
				continue
			}
			if g.Static.Less(o.Static) {
				fmt.Fprintf(os.Stderr, "iselbench: %s/%s: optimal static cost %s exceeds greedy %s\n",
					name, w, o.Static, g.Static)
				os.Exit(1)
			}
			delta := float64(o.Cycles) / float64(g.Cycles)
			rep.Rows = append(rep.Rows, costRow{
				Workload:      w,
				GreedyStatic:  g.Static.String(),
				OptimalStatic: o.Static.String(),
				GreedyCycles:  g.Cycles,
				OptimalCycles: o.Cycles,
				DynamicDelta:  delta,
			})
			logSum += math.Log(delta)
			n++
		}
		if n > 0 {
			rep.GeomeanDelta = math.Exp(logSum / float64(n))
		}
		rep.CorpusChecked, rep.CorpusSkipped = sweepCorpus(s, corpusDir)
		out = append(out, rep)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "iselbench:", err)
		os.Exit(1)
	}
}

// sweepCorpus replays every select-diff/selector-diff corpus program
// for the setup's target through the cross-selector oracle, which
// fails if the two engines diverge semantically or the optimal output
// is statically more expensive. Returns (checked, skipped); a genuine
// failure exits nonzero.
func sweepCorpus(s *harness.Setup, dir string) (checked, skipped int) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iselbench: corpus %s: %v (skipping sweep)\n", dir, err)
		return 0, 0
	}
	pl := fuzz.SetupPipeline(s, true)
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		src, err := os.ReadFile(dir + "/" + ent.Name())
		if err != nil {
			fmt.Fprintln(os.Stderr, "iselbench:", err)
			os.Exit(1)
		}
		r, err := fuzz.ParseRepro(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "iselbench: %s: %v\n", ent.Name(), err)
			os.Exit(1)
		}
		if (r.Oracle != "select-diff" && r.Oracle != "selector-diff") || r.Target != s.Name {
			continue
		}
		p, err := fuzz.ParseProg(r.Prog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iselbench: %s: %v\n", ent.Name(), err)
			os.Exit(1)
		}
		cerr := fuzz.CheckSelectorDiff(pl, p, fuzz.VectorsFor(r.Seed, p, 5))
		if fuzz.IsFailure(cerr) {
			fmt.Fprintf(os.Stderr, "iselbench: %s: selector divergence: %v\n", ent.Name(), cerr)
			os.Exit(1)
		}
		if cerr != nil {
			skipped++
			continue
		}
		checked++
	}
	return checked, skipped
}

// obsGuardPct is the ceiling the disabled-instrumentation overhead
// estimate must stay under (the ISSUE's acceptance criterion): when the
// estimate reaches this, -obsjson exits nonzero, which is the CI guard.
const obsGuardPct = 2.0

// obsBench is the -obsjson output (BENCH_obs.json): per-target
// overhead baselines plus one fleet-level distributed-tracing health
// sample (schema in EXPERIMENTS.md).
type obsBench struct {
	Targets []obsReport `json:"targets"`
	Fleet   obsFleet    `json:"fleet"`
}

// obsFleet records one traced cross-replica request on a miniature
// in-process cluster: the assembled fleet trace's span and replica
// counts, and the latency-histogram exemplar coverage on the replica
// that served it.
type obsFleet struct {
	Replicas         int     `json:"replicas"`
	TraceFleetSpans  int     `json:"trace_fleet_spans"`
	TraceFleetNodes  int     `json:"trace_fleet_nodes"`
	ExemplarCoverage float64 `json:"exemplar_coverage"`
}

// obsReport is one target of the -obsjson output (BENCH_obs.json): the
// same synthesis run without and with observability attached, the event
// volume the instrumented run produced, and the measured cost of one
// disabled (nil-receiver) instrumentation operation — from which the
// disabled-path overhead is estimated as nil_op_ns × 3 ops/event ×
// events / baseline wall time.
type obsReport struct {
	Target          string  `json:"target"`
	Rules           int     `json:"rules"`
	BaselineSynthMS float64 `json:"baseline_synth_ms"`
	TracedSynthMS   float64 `json:"traced_synth_ms"`
	TracedOverPct   float64 `json:"traced_overhead_pct"`
	Spans           int     `json:"spans_recorded"`
	SpanStarts      uint64  `json:"span_starts"`
	SMTProvEvents   int64   `json:"smt_prov_events"`
	NilOpNS         float64 `json:"nil_op_ns"`
	DisabledOverPct float64 `json:"disabled_overhead_pct"`
	GuardPct        float64 `json:"guard_pct"`
}

// nilOpNS measures one fully disabled instrumentation site, the
// distributed-tracing calls included: a span start on a nil tracer, an
// attribute set, an end, a remote span start from a trace context, its
// end, and a bucket-exemplar observation on a nil histogram — the
// exact calls the pipeline and the cluster hops make when no Obs is
// attached.
func nilOpNS() float64 {
	var tr *obs.Tracer
	var h *obs.Histogram
	var sink *obs.Span
	const n = 1 << 21
	t0 := time.Now()
	for i := 0; i < n; i++ {
		sp := tr.Start("bench")
		sp.SetInt("k", int64(i))
		sp.End()
		rsp := tr.StartRemote("bench", obs.TraceContext{})
		rsp.End()
		h.ObserveExemplar(int64(i), "")
		sink = rsp
	}
	_ = sink
	return float64(time.Since(t0).Nanoseconds()) / float64(n)
}

// emitObsJSON measures, for both selection targets, the synthesis
// pipeline with observability off (the baseline every other benchmark
// runs) and on (full tracer + metrics + provenance), estimates the
// disabled-path overhead from the nil-op microbenchmark scaled by the
// observed event volume, and fails the run when that estimate breaks
// the guard. The output is the BENCH_obs.json baseline.
func emitObsJSON(workers int) {
	load := func(name string) *harness.Setup {
		var s *harness.Setup
		var err error
		if name == "aarch64" {
			s, err = harness.NewAArch64()
		} else {
			s, err = harness.NewRISCV()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "iselbench:", err)
			os.Exit(1)
		}
		return s
	}
	nilNS := nilOpNS()
	var out []obsReport
	for _, name := range []string{"aarch64", "riscv"} {
		cfg := core.DefaultConfig()
		if workers > 0 {
			cfg.Workers = workers
		}
		s1 := load(name)
		t0 := time.Now()
		lib := s1.Synthesize(cfg, 0)
		baseNS := time.Since(t0).Nanoseconds()

		o := obs.New()
		tcfg := cfg
		tcfg.Obs = o
		s2 := load(name)
		t1 := time.Now()
		lib2 := s2.Synthesize(tcfg, 0)
		tracedNS := time.Since(t1).Nanoseconds()
		if lib2.Len() != lib.Len() {
			fmt.Fprintf(os.Stderr, "iselbench: traced synthesis found %d rules, baseline %d — observability must not change results\n",
				lib2.Len(), lib.Len())
			os.Exit(1)
		}
		smtEvents, _ := o.Prov.Totals()
		// Each instrumentation site costs at most one nilOpNS iteration
		// when disabled (a local span trio plus the remote-start and
		// exemplar calls a cluster hop adds); the ×3 keeps the estimate
		// deliberately conservative. The span-start count is the number
		// of sites the traced run actually passed through.
		events := float64(o.Trace.Started()) + float64(smtEvents)
		disabledPct := 100 * events * 3 * nilNS / float64(baseNS)
		rep := obsReport{
			Target:          name,
			Rules:           lib.Len(),
			BaselineSynthMS: float64(baseNS) / 1e6,
			TracedSynthMS:   float64(tracedNS) / 1e6,
			TracedOverPct:   100 * (float64(tracedNS) - float64(baseNS)) / float64(baseNS),
			Spans:           len(o.Trace.Snapshot()),
			SpanStarts:      o.Trace.Started(),
			SMTProvEvents:   smtEvents,
			NilOpNS:         nilNS,
			DisabledOverPct: disabledPct,
			GuardPct:        obsGuardPct,
		}
		if disabledPct >= obsGuardPct {
			fmt.Fprintf(os.Stderr,
				"iselbench: %s: estimated disabled-instrumentation overhead %.3f%% breaks the %.1f%% guard\n",
				name, disabledPct, obsGuardPct)
			os.Exit(1)
		}
		out = append(out, rep)
	}
	fleet, err := measureFleetTrace()
	if err != nil {
		fmt.Fprintln(os.Stderr, "iselbench: fleet trace:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(obsBench{Targets: out, Fleet: fleet}); err != nil {
		fmt.Fprintln(os.Stderr, "iselbench:", err)
		os.Exit(1)
	}
}

// obsFleetSpec is a miniature single-width ISA: big enough for a real
// synthesis, small enough that the fleet sample stays in milliseconds.
const obsFleetSpec = `
inst ADDrr(rn: reg64, rm: reg64) { rd = rn + rm; }
inst SUBrr(rn: reg64, rm: reg64) { rd = rn - rm; }
inst ANDrr(rn: reg64, rm: reg64) { rd = rn & rm; }
inst ORRrr(rn: reg64, rm: reg64) { rd = rn | rm; }
inst EORrr(rn: reg64, rm: reg64) { rd = rn ^ rm; }
inst MVNr(rm: reg64) { rd = ~rm; }
inst MOVZ(imm: imm16) { rd = zext(imm, 64); }
`

// measureFleetTrace boots a two-replica in-process cluster, sends one
// traced synthesis to the replica that does NOT own the fingerprint
// (so the fill crosses the wire), and reports the assembled fleet
// trace plus the caller's exemplar coverage — the BENCH_obs.json
// evidence that distributed tracing works end to end.
func measureFleetTrace() (obsFleet, error) {
	const replicas = 2
	mk := func(i int) (*service.Server, *obs.Obs, error) {
		o := obs.New()
		sv, err := service.New(service.Config{
			Workers:    2,
			QueueDepth: 8,
			Synth:      core.Config{TestInputs: 16, Workers: 2, SMTMaxConflicts: 64},
			Obs:        o,
		})
		return sv, o, err
	}
	lc, err := cluster.StartLocal(replicas, mk, cluster.Config{HedgeDelay: time.Millisecond})
	if err != nil {
		return obsFleet{}, err
	}
	defer lc.Close()

	fp, err := lc.Replica(0).SV.FingerprintRequest("mini", obsFleetSpec, "")
	if err != nil {
		return obsFleet{}, err
	}
	caller := lc.Replica(0).URL
	if lc.Replica(0).Node.OwnerOf(fp) == caller {
		caller = lc.Replica(1).URL
	}
	tc := obs.TraceContext{TraceID: obs.NewTraceID(), SpanID: 0x0b5f1ee7, Sampled: true}
	body, _ := json.Marshal(service.SynthesizeRequest{Target: "mini", Spec: obsFleetSpec})
	req, _ := http.NewRequest(http.MethodPost, caller+"/v1/synthesize", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, tc.Header())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return obsFleet{}, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return obsFleet{}, fmt.Errorf("synthesize: HTTP %d", resp.StatusCode)
	}

	// Spans commit when they end, which trails the response; poll until
	// the trace validates with spans from both replicas.
	fl := obsFleet{Replicas: replicas}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		r2, err := http.Get(caller + "/v1/trace/" + tc.TraceID.String() + "?format=spans")
		if err != nil {
			return obsFleet{}, err
		}
		var sr service.TraceSpansResponse
		ok := r2.StatusCode == http.StatusOK && json.NewDecoder(r2.Body).Decode(&sr) == nil
		io.Copy(io.Discard, r2.Body)
		r2.Body.Close()
		if ok && obs.ValidateTraceSpans(sr.Spans) == nil {
			nodes := map[string]bool{}
			for _, s := range sr.Spans {
				nodes[s.Node] = true
			}
			if len(nodes) >= replicas {
				fl.TraceFleetSpans = len(sr.Spans)
				fl.TraceFleetNodes = len(nodes)
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if fl.TraceFleetNodes < replicas {
		return obsFleet{}, fmt.Errorf("trace %s never spanned %d replicas", tc.TraceID, replicas)
	}

	r3, err := http.Get(caller + "/metrics?exemplars=1")
	if err != nil {
		return obsFleet{}, err
	}
	text, _ := io.ReadAll(r3.Body)
	r3.Body.Close()
	fams, err := obs.ParseProm(string(text))
	if err != nil {
		return obsFleet{}, fmt.Errorf("parse prom: %w", err)
	}
	withEx, populated := obs.ExemplarCoverage(fams["http_request_duration_ns"])
	if populated > 0 {
		fl.ExemplarCoverage = float64(withEx) / float64(populated)
	}
	return fl, nil
}

// encReport is one target of the -encjson output (BENCH_enc.json): the
// workload suite assembled to machine bytes, with every instruction
// round-trip-verified, and the raw encoder/decoder throughput.
type encReport struct {
	Target     string  `json:"target"`
	Workloads  int     `json:"workloads"`
	Insts      int     `json:"insts"`
	CodeBytes  int     `json:"code_bytes"`
	RoundTrips int     `json:"round_trips"`
	EncodeMBps float64 `json:"encode_mbps"`
	DecodeMBps float64 `json:"decode_mbps"`
}

// emitEncJSON selects and assembles the full workload suite for both
// selection targets, demands a byte-identical decode/re-encode round
// trip for every emitted instruction (any divergence exits nonzero),
// and then measures raw encode and decode throughput over the
// assembled images. The output is the BENCH_enc.json baseline.
func emitEncJSON() {
	load := func(name string) *harness.Setup {
		var s *harness.Setup
		var err error
		if name == "aarch64" {
			s, err = harness.NewAArch64()
		} else {
			s, err = harness.NewRISCV()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "iselbench:", err)
			os.Exit(1)
		}
		return s
	}
	var out []encReport
	for _, name := range []string{"aarch64", "riscv"} {
		s := load(name)
		c, err := enc.NewCodec(s.ISA)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iselbench:", err)
			os.Exit(1)
		}
		a := enc.NewAssembler(c)
		rep := encReport{Target: name}
		var imgs []*enc.Image
		for _, w := range bench.Suite(1) {
			f := w.Build()
			isel.Prepare(f, s.Name)
			mf, r := s.Handwritten.Select(f)
			if r.Fallback {
				fmt.Fprintf(os.Stderr, "iselbench: %s: %s: selection fell back (%s), excluded from the encoding baseline\n",
					name, w.Name, r.FallbackReason)
				continue
			}
			img, aerr := a.Assemble(mf)
			if aerr != nil {
				fmt.Fprintf(os.Stderr, "iselbench: %s: %s: assemble: %v\n", name, w.Name, aerr)
				os.Exit(1)
			}
			imgs = append(imgs, img)
			rep.Workloads++
			rep.Insts += len(img.Units)
			rep.CodeBytes += len(img.Code)
		}

		// Round-trip verification: decode each image and demand byte
		// identity against what was assembled, instruction by instruction.
		for _, img := range imgs {
			listing := c.Disassemble(img.Code, img.Base)
			if len(listing) != len(img.Units) {
				fmt.Fprintf(os.Stderr, "iselbench: %s: %d units decoded as %d lines\n", name, len(img.Units), len(listing))
				os.Exit(1)
			}
			for i, ln := range listing {
				u := img.Units[i]
				re, rerr := ln.Inst.Encode(ln.Ops)
				if rerr != nil || ln.Inst != u.IC || !bytes.Equal(re, u.Bytes) {
					fmt.Fprintf(os.Stderr, "iselbench: %s: unit %d (%s) does not round-trip\n", name, i, u.IC.Inst.Name)
					os.Exit(1)
				}
				rep.RoundTrips++
			}
		}

		// Encoder throughput: re-encode every assembled unit from its
		// operands, repeatedly, for a fixed wall-time budget.
		const budget = 300 * time.Millisecond
		encoded := 0
		t0 := time.Now()
		for time.Since(t0) < budget {
			for _, img := range imgs {
				for i := range img.Units {
					b, eerr := img.Units[i].IC.Encode(img.Units[i].Ops)
					if eerr != nil {
						fmt.Fprintln(os.Stderr, "iselbench:", eerr)
						os.Exit(1)
					}
					encoded += len(b)
				}
			}
		}
		rep.EncodeMBps = float64(encoded) / 1e6 / time.Since(t0).Seconds()

		// Decoder throughput: walk the images through the decode trie
		// (field extraction included, text formatting not).
		decoded := 0
		t1 := time.Now()
		for time.Since(t1) < budget {
			for _, img := range imgs {
				for off := 0; off < len(img.Code); {
					_, _, size, derr := c.DecodeAt(img.Code, off)
					if derr != nil {
						fmt.Fprintln(os.Stderr, "iselbench:", derr)
						os.Exit(1)
					}
					off += size
				}
				decoded += len(img.Code)
			}
		}
		rep.DecodeMBps = float64(decoded) / 1e6 / time.Since(t1).Seconds()
		out = append(out, rep)
	}
	je := json.NewEncoder(os.Stdout)
	je.SetIndent("", "  ")
	if err := je.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "iselbench:", err)
		os.Exit(1)
	}
}

// writeTrace dumps the recorded spans as Chrome trace-event JSON.
func writeTrace(o *obs.Obs, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iselbench:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := o.Trace.WriteTraceJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "iselbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "iselbench: wrote trace (%d spans) to %s\n",
		len(o.Trace.Snapshot()), path)
}

func emitJSON(s *harness.Setup, rules int, synthElapsed time.Duration, scale int, rows []harness.Row) {
	rep := benchReport{
		Target:  s.Name,
		Scale:   scale,
		Rules:   rules,
		SynthMS: float64(synthElapsed.Nanoseconds()) / 1e6,
		Geomean: map[string]float64{},
	}
	if s.Synther != nil {
		rep.Stages = s.Synther.Stats.Snapshot()
	}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, benchRow{
			Workload: r.Workload, Backend: r.Backend,
			Cycles: r.Cycles, Insts: r.Insts, Size: r.Size,
			Fallback: r.Fallback, HookPct: r.HookPct,
		})
	}
	rep.FuzzThroughput = fuzz.Throughput(fuzz.SetupPipeline(s, true), 1, 300)
	rep.Normalized = harness.Normalized(rows, "selectiondag")
	seen := map[string]bool{}
	for _, r := range rows {
		if !seen[r.Backend] {
			seen[r.Backend] = true
			if g := harness.GeoMean(rep.Normalized, r.Backend); g > 0 {
				rep.Geomean[r.Backend] = g
			}
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "iselbench:", err)
		os.Exit(1)
	}
}
