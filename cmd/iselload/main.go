// Command iselload is the serving load harness: it replays a stream of
// fuzz-generated straight-line programs against an iseld cluster at a
// configurable concurrency and reports latency, throughput, and cache
// behaviour as BENCH_serve.json.
//
// By default it boots an in-process cluster of -replicas full iseld
// replicas on loopback ports (real HTTP between them), warms the target
// library through the async job API, then drives POST /v1/select/batch
// round-robin across the replicas. Point it at a running fleet instead
// with -urls.
//
// The harness also exercises distributed tracing end to end: warm jobs
// and a -trace-sample fraction of batch requests carry client-minted
// X-Iseld-Trace contexts, and after the run each sampled trace is
// assembled through GET /v1/trace/{traceId} and validated (single root,
// no orphans, spans from every replica the request touched). The report
// gains a "trace" section; -trace-out saves one assembled multi-node
// trace as Chrome JSON.
//
// The -gate-p99, -gate-hitrate, and -gate-trace flags turn the report
// into a CI gate: the process exits nonzero when the measured p99 batch
// latency exceeds the limit, the combined cache hit rate falls below
// the floor, or (with -gate-trace) any sampled trace fails to assemble
// completely, no trace spans two replicas, or the p99 latency bucket's
// exemplar trace ID does not resolve.
//
// Usage: iselload [-replicas 3] [-n 1000] [-batch 32] [-concurrency 8]
//
//	[-target riscv] [-selector greedy] [-seed 1] [-vectors 2]
//	[-mode fill] [-patterns 8] [-workers 2] [-inputs 16]
//	[-urls http://a,http://b] [-json BENCH_serve.json]
//	[-trace-sample 0.25] [-trace-out fleet-trace.json]
//	[-gate-p99 0] [-gate-hitrate 0] [-gate-trace]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iselgen/internal/bv"
	"iselgen/internal/cluster"
	"iselgen/internal/core"
	"iselgen/internal/fuzz"
	"iselgen/internal/obs"
	"iselgen/internal/service"
)

func main() {
	replicas := flag.Int("replicas", 3, "in-process replica count (ignored with -urls)")
	n := flag.Int("n", 1000, "programs to replay")
	batch := flag.Int("batch", 32, "programs per /v1/select/batch request")
	concurrency := flag.Int("concurrency", 8, "concurrent batch requests in flight")
	target := flag.String("target", "riscv", "selection target (riscv or aarch64)")
	selector := flag.String("selector", "greedy", "selection engine (greedy or optimal)")
	seed := flag.Uint64("seed", 1, "program-generation and simulation-vector seed")
	vectors := flag.Int("vectors", 2, "simulation input vectors per program")
	mode := flag.String("mode", cluster.ModeFill, "cluster mode: fill or forward")
	patterns := flag.Int("patterns", 8, "corpus patterns per synthesis (0 = all; in-process only)")
	workers := flag.Int("workers", 2, "synthesis workers per replica (in-process only)")
	queue := flag.Int("queue", 16, "scheduler queue depth per replica (in-process only)")
	inputs := flag.Int("inputs", 16, "test inputs per synthesized sequence (in-process only)")
	timeout := flag.Duration("timeout", 2*time.Minute, "synthesis deadline for the warm-up job")
	urls := flag.String("urls", "", "comma-separated replica base URLs (empty = boot in-process)")
	jsonOut := flag.String("json", "", "write the report to this file (empty = stdout)")
	traceSample := flag.Float64("trace-sample", 0.25, "fraction of batch requests carrying a client-minted trace context (0 = none; warm jobs are always traced when nonzero)")
	traceOut := flag.String("trace-out", "", "write the widest assembled fleet trace as Chrome JSON to this file (empty = skip)")
	gateP99 := flag.Duration("gate-p99", 0, "fail when p99 batch latency exceeds this (0 = off)")
	gateHit := flag.Float64("gate-hitrate", 0, "fail when the combined cache hit rate is below this fraction (0 = off)")
	gateTrace := flag.Bool("gate-trace", false, "fail unless every sampled trace assembles completely, at least one spans two replicas, and the p99 bucket exemplar resolves")
	flag.Parse()

	if *n < 1 || *batch < 1 || *concurrency < 1 {
		fatal(fmt.Errorf("-n, -batch, and -concurrency must all be positive"))
	}

	// Generate the program stream up front: one deterministic program per
	// index, so a run is reproducible from (-seed, -n) alone.
	gcfg := fuzz.DefaultGenConfig()
	programs := make([]string, *n)
	for i := range programs {
		programs[i] = fuzz.Gen(bv.NewRNG(fuzz.SubSeed(*seed, uint64(i))), gcfg).Format()
	}

	var endpoints []string
	if *urls != "" {
		for _, u := range strings.Split(*urls, ",") {
			if u = strings.TrimSpace(u); u != "" {
				endpoints = append(endpoints, strings.TrimRight(u, "/"))
			}
		}
		if len(endpoints) == 0 {
			fatal(fmt.Errorf("-urls parsed to an empty list"))
		}
	} else {
		lc, err := bootCluster(*replicas, *mode, *workers, *queue, *patterns, *inputs)
		if err != nil {
			fatal(err)
		}
		defer lc.Close()
		endpoints = lc.URLs()
	}

	client := &http.Client{Timeout: 5 * time.Minute}

	// Warm every replica through the async job API: submit, then poll.
	// Replicas that do not own the fingerprint fill from its owner here,
	// so the warm phase already exercises (and counts) peer fills — and
	// each warm job carries a client-minted trace context, making the
	// warm traces the multi-node ones (a non-owner's job span parents
	// the owner's artifact-serving spans across the wire).
	warmT0 := time.Now()
	var warmTraces []string
	for _, ep := range endpoints {
		hdr := ""
		if *traceSample > 0 {
			tc := obs.TraceContext{TraceID: obs.NewTraceID(), SpanID: 0x15e10ad, Sampled: true}
			hdr = tc.Header()
			warmTraces = append(warmTraces, tc.TraceID.String())
		}
		if err := warm(client, ep, *target, *timeout, hdr); err != nil {
			fatal(fmt.Errorf("warm %s: %w", ep, err))
		}
	}
	warmDur := time.Since(warmT0)
	fmt.Fprintf(os.Stderr, "iselload: warmed %d replicas in %.1fs\n", len(endpoints), warmDur.Seconds())

	// Resolve the warm traces before batch traffic can age their spans
	// out of the per-replica span rings.
	trace := ReportTrace{SampleRate: *traceSample}
	bestID, bestNodes := resolveTraces(client, endpoints[0], warmTraces, &trace)

	// Replay: split the stream into batches, drive them round-robin
	// across the replicas from -concurrency workers.
	type job struct {
		idx   int
		progs []string
		trace string // X-Iseld-Trace header value, "" for unsampled batches
	}
	jobs := make(chan job)
	var (
		mu        sync.Mutex
		latencies []time.Duration
		selected  atomic.Int64
		fallbacks atomic.Int64
		progErrs  atomic.Int64
		reqFailed atomic.Int64
		reqTotal  atomic.Int64
	)
	var wg sync.WaitGroup
	runT0 := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				ep := endpoints[jb.idx%len(endpoints)]
				req := service.BatchSelectRequest{
					Target:     *target,
					Programs:   jb.progs,
					Selector:   *selector,
					VectorSeed: *seed,
					Vectors:    *vectors,
				}
				body, _ := json.Marshal(req)
				hreq, _ := http.NewRequest(http.MethodPost, ep+"/v1/select/batch", bytes.NewReader(body))
				hreq.Header.Set("Content-Type", "application/json")
				if jb.trace != "" {
					hreq.Header.Set(obs.TraceHeader, jb.trace)
				}
				t0 := time.Now()
				resp, err := client.Do(hreq)
				d := time.Since(t0)
				reqTotal.Add(1)
				if err != nil {
					reqFailed.Add(1)
					fmt.Fprintf(os.Stderr, "iselload: batch %d via %s: %v\n", jb.idx, ep, err)
					continue
				}
				out, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					reqFailed.Add(1)
					fmt.Fprintf(os.Stderr, "iselload: batch %d via %s: HTTP %d: %s\n",
						jb.idx, ep, resp.StatusCode, bytes.TrimSpace(out))
					continue
				}
				var br service.BatchSelectResponse
				if err := json.Unmarshal(out, &br); err != nil {
					reqFailed.Add(1)
					continue
				}
				selected.Add(int64(br.Selected))
				fallbacks.Add(int64(br.Fallbacks))
				progErrs.Add(int64(br.Failed))
				mu.Lock()
				latencies = append(latencies, d)
				mu.Unlock()
			}
		}()
	}
	// Sample deterministically — every Kth batch carries a minted trace
	// context, so a run is reproducible traces included.
	sampleEvery := 0
	if *traceSample > 0 {
		sampleEvery = int(1 / *traceSample)
		if sampleEvery < 1 {
			sampleEvery = 1
		}
	}
	var batchTraces []string
	nBatches := 0
	for off := 0; off < len(programs); off += *batch {
		end := off + *batch
		if end > len(programs) {
			end = len(programs)
		}
		hdr := ""
		if sampleEvery > 0 && nBatches%sampleEvery == 0 {
			tc := obs.TraceContext{TraceID: obs.NewTraceID(), SpanID: 0x10adba7c, Sampled: true}
			hdr = tc.Header()
			batchTraces = append(batchTraces, tc.TraceID.String())
		}
		jobs <- job{idx: nBatches, progs: programs[off:end], trace: hdr}
		nBatches++
	}
	close(jobs)
	wg.Wait()
	runDur := time.Since(runT0)

	// Scrape every replica's Prometheus surface — strictly parsed, so a
	// malformed exposition fails the run rather than skewing the report.
	sums := map[string]float64{}
	for _, ep := range endpoints {
		if err := scrape(client, ep, sums); err != nil {
			fatal(fmt.Errorf("scrape %s: %w", ep, err))
		}
	}

	// Resolve the sampled batch traces, then close the observability
	// loop: the latency histogram's slowest populated bucket must carry
	// an exemplar trace ID the fleet can still assemble.
	if id, nodes := resolveTraces(client, endpoints[0], batchTraces, &trace); nodes > bestNodes {
		bestID, bestNodes = id, nodes
	}
	if trace.Sampled > 0 {
		trace.Completeness = float64(trace.Assembled) / float64(trace.Sampled)
	}
	trace.ExemplarCoverage, trace.ExemplarResolved = checkExemplar(client, endpoints[0])
	if *traceOut != "" && bestID != "" {
		if err := saveTrace(client, endpoints[0], bestID, *traceOut); err != nil {
			fatal(fmt.Errorf("trace-out: %w", err))
		}
		fmt.Fprintf(os.Stderr, "iselload: wrote %s (trace %s, %d replicas)\n", *traceOut, bestID, bestNodes)
	}

	rep := buildReport(reportInput{
		endpoints: len(endpoints), mode: *mode, target: *target, selector: *selector,
		seed: *seed, patterns: *patterns, batch: *batch, concurrency: *concurrency,
		programs: *n, warmDur: warmDur, runDur: runDur,
		latencies: latencies, sums: sums,
		reqTotal: reqTotal.Load(), reqFailed: reqFailed.Load(),
		selected: selected.Load(), fallbacks: fallbacks.Load(), progErrs: progErrs.Load(),
		trace:   trace,
		gateP99: *gateP99, gateHit: *gateHit, gateTrace: *gateTrace,
	})

	enc, _ := json.MarshalIndent(rep, "", "  ")
	enc = append(enc, '\n')
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, enc, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "iselload: wrote %s\n", *jsonOut)
	} else {
		os.Stdout.Write(enc)
	}
	fmt.Fprintf(os.Stderr,
		"iselload: %d programs in %.1fs (%.0f/s), p50 %.1fms p99 %.1fms, hit rate %.0f%%, %d failed requests\n",
		*n, runDur.Seconds(), rep.Throughput, rep.Latency.P50MS, rep.Latency.P99MS,
		rep.Cluster.HitRateCombined*100, rep.Requests.Failed)
	if trace.Sampled > 0 {
		fmt.Fprintf(os.Stderr,
			"iselload: traces %d/%d assembled, %d multi-node (widest %d replicas), exemplar coverage %.0f%% resolved=%v\n",
			trace.Assembled, trace.Sampled, trace.MultiNodeTraces, trace.FleetNodes,
			trace.ExemplarCoverage*100, trace.ExemplarResolved)
	}
	if !rep.Gates.Passed {
		fmt.Fprintf(os.Stderr, "iselload: GATE FAILED: %s\n", strings.Join(rep.Gates.Failures, "; "))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iselload:", err)
	os.Exit(1)
}

// bootCluster starts the in-process fleet: full replicas, loopback HTTP.
func bootCluster(n int, mode string, workers, queue, patterns, inputs int) (*cluster.Local, error) {
	mk := func(i int) (*service.Server, *obs.Obs, error) {
		o := obs.New()
		synth := core.DefaultConfig()
		if inputs > 0 {
			synth.TestInputs = inputs
		}
		sv, err := service.New(service.Config{
			Workers:     workers,
			QueueDepth:  queue,
			Synth:       synth,
			MaxPatterns: patterns,
			Obs:         o,
		})
		return sv, o, err
	}
	return cluster.StartLocal(n, mk, cluster.Config{Mode: mode, HedgeDelay: 50 * time.Millisecond})
}

// warm synthesizes the target's library on one replica through the
// async job API: POST /v1/jobs, then poll the returned job until it
// leaves the queue. A non-empty traceHdr rides the submit request as
// its X-Iseld-Trace context (the polls stay untraced — they would
// bloat the trace with hundreds of identical spans).
func warm(client *http.Client, ep, target string, timeout time.Duration, traceHdr string) error {
	body, _ := json.Marshal(service.SynthesizeRequest{
		Target: target, TimeoutMS: int64(timeout / time.Millisecond),
	})
	req, _ := http.NewRequest(http.MethodPost, ep+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	if traceHdr != "" {
		req.Header.Set(obs.TraceHeader, traceHdr)
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(out))
	}
	var sub service.JobSubmitResponse
	if err := json.Unmarshal(out, &sub); err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	deadline := time.Now().Add(timeout + time.Minute)
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s: still not done at deadline", sub.ID)
		}
		resp, err := client.Get(ep + sub.Poll)
		if err != nil {
			return err
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var st service.JobStatus
		if err := json.Unmarshal(out, &st); err != nil {
			return fmt.Errorf("poll: %w", err)
		}
		switch st.Status {
		case service.JobDone:
			return nil
		case service.JobFailed:
			return fmt.Errorf("job %s failed: %s", sub.ID, st.Error)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// resolveTraces assembles each client-minted trace through one
// replica's fleet trace endpoint and folds the outcome into st. Spans
// commit when they end, which trails the HTTP responses that created
// them, so each trace is polled briefly until it validates (single
// trace ID, unique span IDs, exactly one root, no orphans). Returns
// the trace spanning the most replicas for -trace-out.
func resolveTraces(client *http.Client, ep string, ids []string, st *ReportTrace) (bestID string, bestNodes int) {
	for _, id := range ids {
		st.Sampled++
		var spans []obs.TraceSpan
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := client.Get(ep + "/v1/trace/" + id + "?format=spans")
			if err != nil {
				break
			}
			var sr service.TraceSpansResponse
			ok := resp.StatusCode == http.StatusOK &&
				json.NewDecoder(resp.Body).Decode(&sr) == nil
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if ok && obs.ValidateTraceSpans(sr.Spans) == nil {
				spans = sr.Spans
				break
			}
			time.Sleep(25 * time.Millisecond)
		}
		if spans == nil {
			continue
		}
		st.Assembled++
		st.FleetSpans += len(spans)
		nodes := map[string]bool{}
		for _, s := range spans {
			nodes[s.Node] = true
		}
		if len(nodes) > st.FleetNodes {
			st.FleetNodes = len(nodes)
		}
		if len(nodes) >= 2 {
			st.MultiNodeTraces++
		}
		if len(nodes) > bestNodes {
			bestNodes, bestID = len(nodes), id
		}
	}
	return bestID, bestNodes
}

// checkExemplar closes the observability loop on one replica: the
// request-latency histogram's populated buckets must carry exemplar
// annotations, and the slowest bucket's trace ID must still assemble
// through the fleet trace endpoint.
func checkExemplar(client *http.Client, ep string) (coverage float64, resolved bool) {
	resp, err := client.Get(ep + "/metrics?exemplars=1")
	if err != nil {
		return 0, false
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if fams, err := obs.ParseProm(string(text)); err == nil {
		withEx, populated := obs.ExemplarCoverage(fams["http_request_duration_ns"])
		if populated > 0 {
			coverage = float64(withEx) / float64(populated)
		}
	}
	r2, err := client.Get(ep + "/v1/metrics")
	if err != nil {
		return coverage, false
	}
	var snap service.MetricsSnapshot
	decodeErr := json.NewDecoder(r2.Body).Decode(&snap)
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if decodeErr != nil {
		return coverage, false
	}
	var pick *obs.HistExemplar
	for i := range snap.TraceExemplars {
		ex := &snap.TraceExemplars[i]
		if ex.Metric != "http_request_duration_ns" {
			continue
		}
		if pick == nil || ex.BucketLE > pick.BucketLE {
			pick = ex
		}
	}
	if pick == nil {
		return coverage, false
	}
	r3, err := client.Get(ep + "/v1/trace/" + pick.TraceID + "?format=spans")
	if err != nil {
		return coverage, false
	}
	io.Copy(io.Discard, r3.Body)
	r3.Body.Close()
	return coverage, r3.StatusCode == http.StatusOK
}

// saveTrace fetches one assembled fleet trace as Chrome JSON, re-parses
// it with the strict trace-file parser (a malformed artifact fails the
// run, it does not get uploaded), and writes it to path.
func saveTrace(client *http.Client, ep, traceID, path string) error {
	resp, err := client.Get(ep + "/v1/trace/" + traceID)
	if err != nil {
		return err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d fetching trace %s", resp.StatusCode, traceID)
	}
	if _, err := obs.ParseTraceFile(data); err != nil {
		return fmt.Errorf("assembled trace fails strict parse: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// scrape strictly parses one replica's /metrics and accumulates the
// iseld_* and cluster_* counters into sums.
func scrape(client *http.Client, ep string, sums map[string]float64) error {
	resp, err := client.Get(ep + "/metrics")
	if err != nil {
		return err
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	fams, err := obs.ParseProm(string(text))
	if err != nil {
		return fmt.Errorf("parse prom: %w", err)
	}
	for name, fam := range fams {
		if !strings.HasPrefix(name, "iseld_") && !strings.HasPrefix(name, "cluster_") {
			continue
		}
		for _, s := range fam.Samples {
			sums[name] += s.Value
		}
	}
	return nil
}

// Report is the BENCH_serve.json schema (documented in EXPERIMENTS.md).
type Report struct {
	Bench      string        `json:"bench"`
	Config     ReportConfig  `json:"config"`
	WarmSec    float64       `json:"warm_sec"`
	ElapsedSec float64       `json:"elapsed_sec"`
	Throughput float64       `json:"throughput_programs_per_sec"`
	Latency    ReportLatency `json:"latency"`
	Requests   ReportReqs    `json:"requests"`
	Programs   ReportProgs   `json:"programs"`
	Cluster    ReportCluster `json:"cluster"`
	Trace      ReportTrace   `json:"trace"`
	Gates      ReportGates   `json:"gates"`
}

type ReportConfig struct {
	Replicas    int    `json:"replicas"`
	Mode        string `json:"mode"`
	Target      string `json:"target"`
	Selector    string `json:"selector"`
	Seed        uint64 `json:"seed"`
	Patterns    int    `json:"patterns"`
	Batch       int    `json:"batch"`
	Concurrency int    `json:"concurrency"`
}

type ReportLatency struct {
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
	MeanMS float64 `json:"mean_ms"`
}

type ReportReqs struct {
	Total  int64 `json:"total"`
	Failed int64 `json:"failed"`
}

type ReportProgs struct {
	Total     int   `json:"total"`
	Selected  int64 `json:"selected"`
	Fallbacks int64 `json:"fallbacks"`
	Errors    int64 `json:"errors"`
}

type ReportCluster struct {
	CacheHits       float64 `json:"cache_hits"`
	DiskHits        float64 `json:"disk_hits"`
	Joins           float64 `json:"joins"`
	PeerFills       float64 `json:"peer_fills"`
	SynthRuns       float64 `json:"synth_runs"`
	IncrRuns        float64 `json:"incr_runs"`
	ArtifactsServed float64 `json:"artifacts_served"`
	BatchPrograms   float64 `json:"batch_programs"`
	Forwarded       float64 `json:"forwarded"`
	Hedges          float64 `json:"hedges"`
	PeerErrors      float64 `json:"peer_errors"`
	HitRateCombined float64 `json:"hit_rate_combined"`
}

// ReportTrace summarizes the distributed-tracing health check: how
// many client-minted traces assembled fleet-wide, how far they
// spanned, and whether the latency exemplars still resolve.
type ReportTrace struct {
	SampleRate       float64 `json:"sample_rate"`
	Sampled          int     `json:"sampled"`
	Assembled        int     `json:"assembled"`
	Completeness     float64 `json:"completeness"`
	FleetSpans       int     `json:"fleet_spans"`
	FleetNodes       int     `json:"fleet_nodes"`
	MultiNodeTraces  int     `json:"multi_node_traces"`
	ExemplarCoverage float64 `json:"exemplar_coverage"`
	ExemplarResolved bool    `json:"exemplar_resolved"`
}

type ReportGates struct {
	P99LimitMS   float64  `json:"p99_limit_ms,omitempty"`
	HitRateFloor float64  `json:"hit_rate_floor,omitempty"`
	Passed       bool     `json:"passed"`
	Failures     []string `json:"failures,omitempty"`
}

type reportInput struct {
	endpoints                     int
	mode, target, selector        string
	seed                          uint64
	patterns, batch, concurrency  int
	programs                      int
	warmDur, runDur               time.Duration
	latencies                     []time.Duration
	sums                          map[string]float64
	reqTotal, reqFailed           int64
	selected, fallbacks, progErrs int64
	trace                         ReportTrace
	gateP99                       time.Duration
	gateHit                       float64
	gateTrace                     bool
}

func buildReport(in reportInput) Report {
	sort.Slice(in.latencies, func(i, j int) bool { return in.latencies[i] < in.latencies[j] })
	pct := func(p float64) float64 {
		if len(in.latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(in.latencies)-1))
		return float64(in.latencies[i].Nanoseconds()) / 1e6
	}
	var mean float64
	for _, d := range in.latencies {
		mean += float64(d.Nanoseconds()) / 1e6
	}
	if len(in.latencies) > 0 {
		mean /= float64(len(in.latencies))
	}
	cl := ReportCluster{
		CacheHits:       in.sums["iseld_cache_hits"],
		DiskHits:        in.sums["iseld_disk_hits"],
		Joins:           in.sums["iseld_joins"],
		PeerFills:       in.sums["iseld_peer_fills"],
		SynthRuns:       in.sums["iseld_synth_runs"],
		IncrRuns:        in.sums["iseld_incr_runs"],
		ArtifactsServed: in.sums["iseld_artifacts_served"],
		BatchPrograms:   in.sums["iseld_batch_programs"],
		Forwarded:       in.sums["cluster_forwarded"],
		Hedges:          in.sums["cluster_hedges"],
		PeerErrors:      in.sums["cluster_peer_errors"],
	}
	// Combined hit rate: of every cache decision the fleet made, the
	// fraction answered without running a synthesis (memory, flight join,
	// disk, or a peer's artifact).
	served := cl.CacheHits + cl.Joins + cl.DiskHits + cl.PeerFills
	total := served + cl.SynthRuns + cl.IncrRuns
	if total > 0 {
		cl.HitRateCombined = served / total
	}
	rep := Report{
		Bench: "serve",
		Config: ReportConfig{
			Replicas: in.endpoints, Mode: in.mode, Target: in.target, Selector: in.selector,
			Seed: in.seed, Patterns: in.patterns, Batch: in.batch, Concurrency: in.concurrency,
		},
		WarmSec:    in.warmDur.Seconds(),
		ElapsedSec: in.runDur.Seconds(),
		Latency: ReportLatency{
			P50MS: pct(0.50), P90MS: pct(0.90), P99MS: pct(0.99), MaxMS: pct(1.0), MeanMS: mean,
		},
		Requests: ReportReqs{Total: in.reqTotal, Failed: in.reqFailed},
		Programs: ReportProgs{
			Total: in.programs, Selected: in.selected, Fallbacks: in.fallbacks, Errors: in.progErrs,
		},
		Cluster: cl,
		Trace:   in.trace,
		Gates:   ReportGates{Passed: true},
	}
	if in.runDur > 0 {
		rep.Throughput = float64(in.programs) / in.runDur.Seconds()
	}
	if in.gateP99 > 0 {
		rep.Gates.P99LimitMS = float64(in.gateP99.Nanoseconds()) / 1e6
		if rep.Latency.P99MS > rep.Gates.P99LimitMS {
			rep.Gates.Failures = append(rep.Gates.Failures,
				fmt.Sprintf("p99 %.1fms exceeds limit %.1fms", rep.Latency.P99MS, rep.Gates.P99LimitMS))
		}
	}
	if in.gateHit > 0 {
		rep.Gates.HitRateFloor = in.gateHit
		if rep.Cluster.HitRateCombined < in.gateHit {
			rep.Gates.Failures = append(rep.Gates.Failures,
				fmt.Sprintf("hit rate %.2f below floor %.2f", rep.Cluster.HitRateCombined, in.gateHit))
		}
	}
	if in.gateTrace {
		if in.trace.Sampled == 0 {
			rep.Gates.Failures = append(rep.Gates.Failures,
				"-gate-trace set but no traces were sampled (raise -trace-sample)")
		}
		if in.trace.Assembled < in.trace.Sampled {
			rep.Gates.Failures = append(rep.Gates.Failures,
				fmt.Sprintf("only %d of %d sampled traces assembled completely",
					in.trace.Assembled, in.trace.Sampled))
		}
		if in.trace.Sampled > 0 && in.trace.MultiNodeTraces == 0 {
			rep.Gates.Failures = append(rep.Gates.Failures,
				"no assembled trace spans two replicas")
		}
		if !in.trace.ExemplarResolved {
			rep.Gates.Failures = append(rep.Gates.Failures,
				"latency-histogram exemplar trace ID did not resolve")
		}
	}
	if in.reqFailed > 0 {
		rep.Gates.Failures = append(rep.Gates.Failures,
			fmt.Sprintf("%d of %d requests failed", in.reqFailed, in.reqTotal))
	}
	rep.Gates.Passed = len(rep.Gates.Failures) == 0
	return rep
}
