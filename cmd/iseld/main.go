// Command iseld is the selection-as-a-service daemon: it synthesizes
// rule libraries on demand (once per spec + config fingerprint), caches
// them in memory and on disk, and serves selection and metrics over
// HTTP/JSON.
//
// Endpoints:
//
//	POST /v1/synthesize   synthesize (or fetch) a library for a builtin
//	                      target or an inline DSL spec
//	POST /v1/select       lower a benchmark gMIR program (or an inline
//	                      "program") with a target's synthesized backend
//	                      and simulate it; the "selector" field picks
//	                      the engine ("greedy" or "optimal" — the
//	                      cost-model DP tiler), and each selector keys
//	                      its own cached library entry (the cost-table
//	                      version rides in the fingerprint)
//	POST /v1/select/batch lower many inline programs in one request
//	                      against one library acquisition
//	POST /v1/jobs         submit a synthesis asynchronously: answers 202
//	                      with a job ID to poll
//	GET  /v1/jobs/{id}    job progress and, when done, the result
//	POST /v1/artifact     serve (or produce) a serialized library for a
//	                      peer replica's cache fill
//	GET  /v1/solver/query look up one memoized SMT verdict by its
//	                      content-addressed key (?key=...); misses probe
//	                      cluster peers cache-only and answer 404 — the
//	                      endpoint never solves
//	POST /v1/solver/query the same lookup with the key in a JSON body
//	GET  /v1/rules/{fingerprint}/why
//	                      a rule's provenance joined with the memoized
//	                      solver queries its synthesis ran
//	GET  /v1/cluster      ring membership and per-peer breaker state
//	                      (clustered mode only)
//	GET  /v1/metrics      cache/queue counters, per-stage timings, build
//	                      info, and uptime (JSON)
//	GET  /metrics         the same counters plus latency histograms in
//	                      Prometheus text format (strict 0.0.4;
//	                      ?exemplars=1 adds OpenMetrics-style trace
//	                      exemplar annotations)
//	GET  /v1/trace        recent pipeline spans as Chrome trace-event
//	                      JSON (open in chrome://tracing or Perfetto)
//	GET  /v1/trace/{traceId}
//	                      one distributed trace assembled fleet-wide:
//	                      every replica's spans for the trace ID, merged
//	                      with clock-offset normalization into a single
//	                      Chrome trace (?format=spans for the raw span
//	                      set); trace IDs come from the X-Iseld-Trace
//	                      response header, access-log lines, and the
//	                      latency-histogram exemplars on
//	                      /metrics?exemplars=1
//	GET  /debug/pprof/    Go runtime profiles
//	GET  /healthz         liveness
//
// Every response carries an X-Request-Id header that also appears in
// the structured access log on stderr.
//
// Usage: iseld [-addr :8791] [-cache-dir DIR] [-cache-entries N]
//
//	[-workers N] [-synth-workers N] [-queue N] [-patterns N] [-timeout D]
//	[-trace-spans N] [-trace-sample F] [-no-obs] [-max-jobs N]
//	[-peers URL,URL,...] [-self URL] [-cluster-mode fill|forward]
//	[-hedge D] [-breaker-failures N] [-breaker-cooldown D]
//	[-drain-timeout D]
//
// With -peers set, replicas form a consistent-hash ring over cache
// fingerprints: a miss is filled from its ring owner over HTTP (so a
// cold key is synthesized once fleet-wide), reads are hedged, per-peer
// circuit breakers isolate dead replicas, and everything degrades to
// local-only service when the fleet is unreachable. On SIGTERM the
// daemon stops accepting, drains in-flight work under -drain-timeout,
// and flushes the disk cache before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"iselgen/internal/cluster"
	"iselgen/internal/core"
	"iselgen/internal/obs"
	"iselgen/internal/service"
	"iselgen/internal/smt"
	"iselgen/internal/solver"
)

func main() {
	addr := flag.String("addr", ":8791", "listen address")
	cacheDir := flag.String("cache-dir", "", "disk artifact cache directory (empty = memory only)")
	cacheEntries := flag.Int("cache-entries", 0, "LRU cap on in-memory cached libraries (0 = unbounded)")
	workers := flag.Int("workers", 2, "synthesis jobs running at once")
	synthWorkers := flag.Int("synth-workers", 0, "matcher threads per synthesis job (0 = ISEL_WORKERS or NumCPU)")
	queue := flag.Int("queue", 8, "waiting-job queue depth (full queue answers 429)")
	patterns := flag.Int("patterns", 0, "limit corpus patterns per synthesis (0 = all)")
	timeout := flag.Duration("timeout", 0, "default per-job synthesis deadline (0 = none)")
	inputs := flag.Int("inputs", 0, "test inputs per sequence (0 = default)")
	cexCache := flag.Int("cex-cache", 0, "counterexample cache capacity (0 = ISEL_CEX_CACHE or default)")
	traceSpans := flag.Int("trace-spans", 0, "span ring capacity for /v1/trace (0 = default)")
	traceSample := flag.Float64("trace-sample", 0, "fraction of requests starting a distributed trace (0 = all, <0 = none; valid incoming X-Iseld-Trace contexts are always honored)")
	noObs := flag.Bool("no-obs", false, "disable tracing, histograms, and decision provenance")
	maxJobs := flag.Int("max-jobs", 0, "cap on async jobs queued+running via POST /v1/jobs (0 = default)")
	peers := flag.String("peers", "", "comma-separated base URLs of every replica, self included (empty = standalone)")
	self := flag.String("self", "", "this replica's base URL as it appears in -peers")
	clusterMode := flag.String("cluster-mode", cluster.ModeFill, "cluster mode: fill (peer cache fills) or forward (proxy to owner)")
	hedge := flag.Duration("hedge", 150*time.Millisecond, "delay before hedging a cache-only probe to the next replica (<0 = off)")
	breakerFailures := flag.Int("breaker-failures", 3, "consecutive peer failures that open its circuit")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "open-circuit cooldown before a half-open probe")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget: drain in-flight work and flush the disk cache")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	var o *obs.Obs
	if !*noObs {
		o = obs.New()
		if *traceSpans > 0 {
			o.Trace = obs.NewTracer(*traceSpans)
		}
		// Deep layers (spec parse/symexec) pick the default up since
		// their APIs carry no configuration.
		obs.SetDefault(o)
	}

	cfg := core.DefaultConfig()
	cfg.Workers = core.ResolveWorkers(*synthWorkers)
	if *inputs > 0 {
		cfg.TestInputs = *inputs
	}
	// The counterexample screen is a pure perf knob (verdict-preserving,
	// excluded from cache fingerprints), resolved flag > env > default.
	smt.Cex.SetCapacity(smt.ResolveCexCap(*cexCache))

	// With a disk cache configured, the solver verdict memo persists
	// alongside the artifacts: settled equivalence verdicts from past
	// daemon lifetimes replay at startup, so a warm restart re-verifies
	// libraries without re-running a single bit-blast.
	if *cacheDir != "" {
		solver.Shared.SetLogger(func(format string, args ...any) {
			logger.Warn(fmt.Sprintf(format, args...))
		})
		jp := filepath.Join(*cacheDir, "solver.journal")
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "iseld:", err)
			os.Exit(1)
		}
		if err := solver.Shared.AttachJournal(jp); err != nil {
			logger.Warn("solver journal unavailable, memo is in-memory only", "path", jp, "err", err.Error())
		} else {
			js := solver.Shared.Journal()
			logger.Info("solver journal attached",
				"path", jp, "verdicts", js.Loaded, "quarantined", js.Quarantined)
		}
	}
	sv, err := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheDir:       *cacheDir,
		CacheEntries:   *cacheEntries,
		Synth:          cfg,
		MaxPatterns:    *patterns,
		DefaultTimeout: *timeout,
		MaxJobs:        *maxJobs,
		Obs:            o,
		TraceSample:    *traceSample,
		Logger:         logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "iseld:", err)
		os.Exit(1)
	}

	// With peers configured, wrap the service in the cluster layer: the
	// ring routes cache-fill ownership, and the handler gains forwarding
	// (in forward mode) plus GET /v1/cluster.
	handler := http.Handler(nil)
	if *peers != "" {
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, strings.TrimRight(p, "/"))
			}
		}
		if *self == "" {
			fmt.Fprintln(os.Stderr, "iseld: -peers requires -self (this replica's URL in the peer list)")
			os.Exit(1)
		}
		node, err := cluster.New(sv, cluster.Config{
			Self:             strings.TrimRight(*self, "/"),
			Peers:            peerList,
			Mode:             *clusterMode,
			HedgeDelay:       *hedge,
			BreakerThreshold: *breakerFailures,
			BreakerCooldown:  *breakerCooldown,
			Obs:              o,
			Logger:           logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "iseld:", err)
			os.Exit(1)
		}
		sv.SetFiller(node)
		sv.SetMemoProber(node)
		sv.SetTraceCollector(node)
		handler = node.Handler()
		logger.Info("iseld clustered",
			"self", *self, "peers", len(peerList), "mode", *clusterMode)
	} else {
		handler = sv.Handler()
	}

	hs := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("iseld listening",
		"addr", *addr, "workers", *workers, "queue", *queue,
		"cache_dir", *cacheDir, "observability", !*noObs)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Info("iseld shutting down", "signal", sig.String())
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "iseld:", err)
		os.Exit(1)
	}

	// Graceful drain under one budget: stop accepting connections, let
	// in-flight requests (async jobs included) finish, then flush the
	// disk-cache persist queue — so a SIGTERM'd replica leaves nothing
	// half-answered and nothing uncached.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		logger.Error("iseld shutdown", "err", err)
	}
	if err := sv.Shutdown(ctx); err != nil {
		logger.Error("iseld drain", "err", err)
	}
	sv.Close()
	logger.Info("iseld stopped")
}
