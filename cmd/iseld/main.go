// Command iseld is the selection-as-a-service daemon: it synthesizes
// rule libraries on demand (once per spec + config fingerprint), caches
// them in memory and on disk, and serves selection and metrics over
// HTTP/JSON.
//
// Endpoints:
//
//	POST /v1/synthesize   synthesize (or fetch) a library for a builtin
//	                      target or an inline DSL spec
//	POST /v1/select       lower a benchmark gMIR program with a target's
//	                      synthesized backend and simulate it; the
//	                      "selector" field picks the engine ("greedy" or
//	                      "optimal" — the cost-model DP tiler), and each
//	                      selector keys its own cached library entry
//	                      (the cost-table version rides in the
//	                      fingerprint)
//	GET  /v1/metrics      cache/queue counters, per-stage timings, build
//	                      info, and uptime (JSON)
//	GET  /metrics         the same counters plus latency histograms in
//	                      Prometheus text format
//	GET  /v1/trace        recent pipeline spans as Chrome trace-event
//	                      JSON (open in chrome://tracing or Perfetto)
//	GET  /debug/pprof/    Go runtime profiles
//	GET  /healthz         liveness
//
// Every response carries an X-Request-Id header that also appears in
// the structured access log on stderr.
//
// Usage: iseld [-addr :8791] [-cache-dir DIR] [-cache-entries N]
//
//	[-workers N] [-queue N] [-patterns N] [-timeout D]
//	[-trace-spans N] [-no-obs]
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"iselgen/internal/core"
	"iselgen/internal/obs"
	"iselgen/internal/service"
)

func main() {
	addr := flag.String("addr", ":8791", "listen address")
	cacheDir := flag.String("cache-dir", "", "disk artifact cache directory (empty = memory only)")
	cacheEntries := flag.Int("cache-entries", 0, "LRU cap on in-memory cached libraries (0 = unbounded)")
	workers := flag.Int("workers", 2, "synthesis jobs running at once")
	queue := flag.Int("queue", 8, "waiting-job queue depth (full queue answers 429)")
	patterns := flag.Int("patterns", 0, "limit corpus patterns per synthesis (0 = all)")
	timeout := flag.Duration("timeout", 0, "default per-job synthesis deadline (0 = none)")
	inputs := flag.Int("inputs", 0, "test inputs per sequence (0 = default)")
	traceSpans := flag.Int("trace-spans", 0, "span ring capacity for /v1/trace (0 = default)")
	noObs := flag.Bool("no-obs", false, "disable tracing, histograms, and decision provenance")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	var o *obs.Obs
	if !*noObs {
		o = obs.New()
		if *traceSpans > 0 {
			o.Trace = obs.NewTracer(*traceSpans)
		}
		// Deep layers (spec parse/symexec) pick the default up since
		// their APIs carry no configuration.
		obs.SetDefault(o)
	}

	cfg := core.DefaultConfig()
	if *inputs > 0 {
		cfg.TestInputs = *inputs
	}
	sv, err := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheDir:       *cacheDir,
		CacheEntries:   *cacheEntries,
		Synth:          cfg,
		MaxPatterns:    *patterns,
		DefaultTimeout: *timeout,
		Obs:            o,
		Logger:         logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "iseld:", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: sv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("iseld listening",
		"addr", *addr, "workers", *workers, "queue", *queue,
		"cache_dir", *cacheDir, "observability", !*noObs)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Info("iseld shutting down", "signal", sig.String())
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "iseld:", err)
		os.Exit(1)
	}

	// Stop accepting connections, then drain queued and in-flight
	// synthesis jobs so every accepted request gets its answer.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		logger.Error("iseld shutdown", "err", err)
	}
	sv.Close()
}
