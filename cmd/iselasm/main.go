// Command iselasm assembles, disassembles, and runs machine code for
// any specified target — builtin (riscv, aarch64, x86) or a DSL spec
// file with encoding clauses. The assembler, decoder, and emulator are
// all derived from the spec's encoding and effect clauses; no
// per-target code is involved.
//
// Usage:
//
//	iselasm -target riscv prog.s                 # assemble: listing + hex
//	iselasm -target riscv -d "9300 3100"         # disassemble hex bytes
//	iselasm -target riscv -d @image.hex          # ... from a file
//	iselasm -target riscv -run -args 40,2 prog.s # assemble and execute
//	iselasm -target examples/newisa/zetacore.spec prog.s
//
// With -run, arguments land in r0, r1, ... (override with -params) and
// the result is read from the register named by -ret (default r0) when
// execution falls off the end of the image.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"iselgen/internal/bv"
	"iselgen/internal/enc"
	"iselgen/internal/isa"
	"iselgen/internal/isa/aarch64"
	"iselgen/internal/isa/riscv"
	"iselgen/internal/isa/x86"
	"iselgen/internal/spec"
	"iselgen/internal/term"
)

func main() {
	target := flag.String("target", "riscv", "target: riscv, aarch64, x86, or a path to a .spec file")
	disasm := flag.String("d", "", "disassemble hex bytes (literal, or @file)")
	run := flag.Bool("run", false, "assemble and execute on the decoding emulator")
	argList := flag.String("args", "", "comma-separated integer arguments for -run")
	params := flag.String("params", "", "registers receiving -args (default r0,r1,...)")
	retReg := flag.String("ret", "r0", "register read as the result after -run")
	base := flag.Uint64("base", enc.Base, "load address")
	flag.Parse()

	tgt, err := loadTarget(*target)
	if err != nil {
		fatal(err)
	}
	c, err := enc.NewCodec(tgt)
	if err != nil {
		fatal(err)
	}

	if *disasm != "" {
		code, err := parseHex(*disasm)
		if err != nil {
			fatal(err)
		}
		for _, ln := range c.Disassemble(code, *base) {
			fmt.Printf("%#8x:  %-12s %s\n", ln.Addr, enc.HexBytes(ln.Bytes), ln.Text)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: iselasm [-target T] [-d hex | [-run] prog.s]")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	img, err := enc.ParseAsm(c, string(src), *base)
	if err != nil {
		fatal(err)
	}

	if !*run {
		for _, u := range img.Units {
			fmt.Printf("%#8x:  %-12s %s\n", u.Addr, enc.HexBytes(u.Bytes), c.Format(u.IC, u.Ops))
		}
		fmt.Printf("image: %d bytes\n%s\n", len(img.Code), enc.HexBytes(img.Code))
		return
	}

	args, err := parseArgs(*argList)
	if err != nil {
		fatal(err)
	}
	if *params == "" {
		for i := range args {
			img.ParamRegs = append(img.ParamRegs, i)
		}
	} else {
		for _, f := range strings.Split(*params, ",") {
			r, err := parseReg(strings.TrimSpace(f))
			if err != nil {
				fatal(err)
			}
			img.ParamRegs = append(img.ParamRegs, r)
		}
	}
	if img.RetReg, err = parseReg(*retReg); err != nil {
		fatal(err)
	}
	e := &enc.Emulator{Codec: c}
	res, err := e.Run(img, args)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("ret = %s (%d instructions)\n", res.Ret, res.Insts)
}

// loadTarget resolves a builtin target name or reads a spec file.
func loadTarget(name string) (*isa.Target, error) {
	b := term.NewBuilder()
	switch name {
	case "riscv":
		return riscv.Load(b)
	case "aarch64":
		return aarch64.Load(b)
	case "x86":
		return x86.Load(b)
	}
	src, err := os.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("iselasm: %q is not a builtin target and not a readable spec file: %w", name, err)
	}
	if _, err := spec.Check(string(src)); err != nil {
		return nil, err
	}
	tname := strings.TrimSuffix(filepath.Base(name), filepath.Ext(name))
	return isa.LoadTarget(b, tname, string(src), nil, 4)
}

func parseHex(s string) ([]byte, error) {
	if strings.HasPrefix(s, "@") {
		data, err := os.ReadFile(s[1:])
		if err != nil {
			return nil, err
		}
		s = string(data)
	}
	clean := strings.Map(func(r rune) rune {
		if strings.ContainsRune(" \t\r\n", r) {
			return -1
		}
		return r
	}, s)
	clean = strings.TrimPrefix(clean, "0x")
	return hex.DecodeString(clean)
}

func parseArgs(s string) ([]bv.BV, error) {
	var out []bv.BV
	if s == "" {
		return out, nil
	}
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if v, err := strconv.ParseInt(f, 0, 64); err == nil {
			out = append(out, bv.NewInt(64, v))
			continue
		}
		u, err := strconv.ParseUint(f, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("iselasm: bad argument %q", f)
		}
		out = append(out, bv.New(64, u))
	}
	return out, nil
}

func parseReg(s string) (int, error) {
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("iselasm: bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("iselasm: bad register %q", s)
	}
	return n, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iselasm:", err)
	os.Exit(1)
}
