// The paper's running example, end to end on the real AArch64 target:
// the gMIR function of Fig. 2 (add with a shifted operand), the canonical
// forms that make the term-index lookup succeed (Figs. 4 and 5), the
// generated TableGen-style rule (Listing 1), and the selected ADDXrs
// machine code — plus the Fig. 10 greedy-matching artifact.
//
//	go run ./examples/addshift
package main

import (
	"fmt"
	"log"

	"iselgen/internal/bv"
	"iselgen/internal/canon"
	"iselgen/internal/core"
	"iselgen/internal/gmir"
	"iselgen/internal/harness"
	"iselgen/internal/isel"
	"iselgen/internal/pattern"
	"iselgen/internal/rules"
	"iselgen/internal/sim"
	"iselgen/internal/term"
)

func main() {
	// --- Fig. 4: syntactically different subtraction terms share one
	// canonical form. ---
	tb := term.NewBuilder()
	cx := canon.NewCtx()
	a := tb.Reg("a", 16)
	b := tb.Reg("b", 16)
	t1 := tb.Add(tb.Add(a, tb.Not(b)), tb.Const(16, 1)) // a + ~b + 1
	t2 := tb.Add(a, tb.Mul(tb.ConstInt(16, -1), b))     // a + (-1)*b
	fmt.Println("Fig. 4 — canonicalization:")
	fmt.Printf("  I  : %s\n", t1)
	fmt.Printf("  II : %s\n", t2)
	fmt.Printf("  canonical (both): %s\n", cx.Canon(t1))
	if cx.Canon(t1) != cx.Canon(t2) {
		log.Fatal("canonical forms differ!")
	}

	// --- Load AArch64 and synthesize the shift-and-add rule. ---
	s, err := harness.NewAArch64()
	if err != nil {
		log.Fatal(err)
	}
	synth := core.New(s.B, s.ISA, core.Config{TestInputs: 64, Workers: 4})
	synth.BuildPool()

	p := pattern.New(pattern.Op(gmir.GAdd, gmir.S64,
		pattern.Leaf(gmir.S64),
		pattern.Op(gmir.GShl, gmir.S64, pattern.Leaf(gmir.S64), pattern.ImmLeaf(gmir.S64))))
	rule := synth.SynthesizeOne(p)
	if rule == nil {
		log.Fatal("no rule synthesized for the shift-and-add pattern")
	}
	fmt.Printf("\nListing 1 — the synthesized rule (found via the %s path):\n%s\n",
		rule.Source, rule)

	// --- Fig. 2: lower the example function through the backend. ---
	lib := rules.NewLibrary("aarch64")
	lib.Add(rule)
	for _, extra := range []*pattern.Pattern{
		pattern.New(pattern.Op(gmir.GAdd, gmir.S64, pattern.Leaf(gmir.S64), pattern.Leaf(gmir.S64))),
		pattern.New(pattern.Op(gmir.GShl, gmir.S64, pattern.Leaf(gmir.S64), pattern.ImmLeaf(gmir.S64))),
	} {
		if r := synth.SynthesizeOne(extra); r != nil {
			lib.Add(r)
		}
	}
	backend := isel.NewA64Synth(s.ISA, lib)

	fb := gmir.NewFunc("fig2")
	x := fb.Param(gmir.S64)
	y := fb.Param(gmir.S64)
	c := fb.Const(gmir.S64, 4)
	sh := fb.Shl(y, c)
	fb.Ret(fb.Add(x, sh))
	f := fb.MustFinish()
	fmt.Printf("\nFig. 2 — gMIR input:\n%s", f)

	mf, rep := backend.Select(f)
	if rep.Fallback {
		log.Fatalf("fallback: %s", rep.FallbackReason)
	}
	fmt.Printf("\nFig. 2 — selected MIR (G_SHL and G_ADD folded into ADDXrs):\n%s", mf)

	m := &sim.Machine{}
	res, err := m.Run(mf, []bv.BV{bv.New(64, 100), bv.New(64, 3)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nf(100, 3) = %v (want %d)\n", res.Ret.Lo, 100+3<<4)

	// --- Fig. 10: the greedy-matching artifact. ---
	fb2 := gmir.NewFunc("fig10")
	x10 := fb2.Param(gmir.S64)
	x11 := fb2.Param(gmir.S64)
	w1 := fb2.Param(gmir.S64)
	w2 := fb2.Param(gmir.S64)
	cmp := fb2.ICmp(gmir.PredEQ, x10, x11)
	selv := fb2.Select(cmp, w1, w2)
	zext := fb2.ZExt(gmir.S64, cmp)
	fb2.Ret(fb2.Xor(selv, zext))
	f2 := fb2.MustFinish()
	s.Synthesize(core.DefaultConfig(), 0)
	mf2, rep2 := s.Synth.Select(f2)
	if rep2.Fallback {
		log.Fatalf("fig10 fallback: %s", rep2.FallbackReason)
	}
	fmt.Printf("\nFig. 10 — greedy matching re-derives the comparison for the\n"+
		"select (both the select and the zero-extension claim it):\n%s", mf2)
}
