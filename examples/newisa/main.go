// Retargeting (§VI-B): define a brand-new accumulator-flavored ISA in
// the spec DSL, synthesize its instruction selector from scratch, and
// run a real workload through it — the paper's claim that the synthesis
// is agnostic to the target and "can reduce the effort of backend
// development".
//
//	go run ./examples/newisa
package main

import (
	"fmt"
	"log"

	"iselgen/internal/bench"
	"iselgen/internal/bv"
	"iselgen/internal/core"
	"iselgen/internal/gmir"
	"iselgen/internal/harness"
	"iselgen/internal/isa"
	"iselgen/internal/isel"
	"iselgen/internal/mir"
	"iselgen/internal/rules"
	"iselgen/internal/sim"
	"iselgen/internal/term"
)

// The "ZetaCore" ISA: a fictional RISC with reverse-subtract, fused
// shift-or, compare-into-register, and auto-scaling loads. Nobody ever
// wrote an instruction selector for it — the synthesizer will.
const zetaSpec = `
inst zadd(a: reg64, b: reg64)    { rd = a + b; } enc(32) { [5:0]=0x01; [10:6]=rd; [15:11]=a; [20:16]=b; [31:21]=0; }
inst zaddk(a: reg64, k: imm16)   { rd = a + zext(k, 64); } enc(32) { [5:0]=0x02; [10:6]=rd; [15:11]=a; [31:16]=k; }
inst zrsub(a: reg64, b: reg64)   { rd = b - a; } enc(32) { [5:0]=0x03; [10:6]=rd; [15:11]=a; [20:16]=b; [31:21]=0; }
inst zmul(a: reg64, b: reg64)    { rd = a * b; } enc(32) { [5:0]=0x04; [10:6]=rd; [15:11]=a; [20:16]=b; [31:21]=0; }
inst zand(a: reg64, b: reg64)    { rd = a & b; } enc(32) { [5:0]=0x05; [10:6]=rd; [15:11]=a; [20:16]=b; [31:21]=0; }
inst zandk(a: reg64, k: imm16)   { rd = a & zext(k, 64); } enc(32) { [5:0]=0x06; [10:6]=rd; [15:11]=a; [31:16]=k; }
inst zor(a: reg64, b: reg64)     { rd = a | b; } enc(32) { [5:0]=0x07; [10:6]=rd; [15:11]=a; [20:16]=b; [31:21]=0; }
inst zxor(a: reg64, b: reg64)    { rd = a ^ b; } enc(32) { [5:0]=0x08; [10:6]=rd; [15:11]=a; [20:16]=b; [31:21]=0; }
inst zshl(a: reg64, s: imm6)     { rd = a << zext(s, 64); } enc(32) { [5:0]=0x09; [10:6]=rd; [15:11]=a; [21:16]=s; [31:22]=0; }
inst zshr(a: reg64, s: imm6)     { rd = a >> zext(s, 64); } enc(32) { [5:0]=0x0a; [10:6]=rd; [15:11]=a; [21:16]=s; [31:22]=0; }
inst zsar(a: reg64, s: imm6)     { rd = ashr(a, zext(s, 64)); } enc(32) { [5:0]=0x0b; [10:6]=rd; [15:11]=a; [21:16]=s; [31:22]=0; }
inst zshlv(a: reg64, b: reg64)   { rd = a << (b % 64:64); } enc(32) { [5:0]=0x0c; [10:6]=rd; [15:11]=a; [20:16]=b; [31:21]=0; }
inst zshrv(a: reg64, b: reg64)   { rd = a >> (b % 64:64); } enc(32) { [5:0]=0x0d; [10:6]=rd; [15:11]=a; [20:16]=b; [31:21]=0; }
inst zsarv(a: reg64, b: reg64)   { rd = ashr(a, b % 64:64); } enc(32) { [5:0]=0x0e; [10:6]=rd; [15:11]=a; [20:16]=b; [31:21]=0; }
inst zshor(a: reg64, b: reg64, s: imm6) { rd = a | (b << zext(s, 64)); } enc(32) { [5:0]=0x0f; [10:6]=rd; [15:11]=a; [20:16]=b; [26:21]=s; [31:27]=0; }
inst zshadd(a: reg64, b: reg64, s: imm6) { rd = a + (b << zext(s, 64)); } enc(32) { [5:0]=0x10; [10:6]=rd; [15:11]=a; [20:16]=b; [26:21]=s; [31:27]=0; }
inst zsetlt(a: reg64, b: reg64)  { rd = zext(slt(a, b), 64); } enc(32) { [5:0]=0x11; [10:6]=rd; [15:11]=a; [20:16]=b; [31:21]=0; }
inst zsetltu(a: reg64, b: reg64) { rd = zext(ult(a, b), 64); } enc(32) { [5:0]=0x12; [10:6]=rd; [15:11]=a; [20:16]=b; [31:21]=0; }
inst zsetnz(a: reg64)            { rd = zext(a != 0, 64); } enc(32) { [5:0]=0x13; [10:6]=rd; [15:11]=a; [31:16]=0; }
inst zsetz(a: reg64)             { rd = zext(a == 0, 64); } enc(32) { [5:0]=0x14; [10:6]=rd; [15:11]=a; [31:16]=0; }
inst zdiv(a: reg64, b: reg64)    { rd = udiv(a, b); } enc(32) { [5:0]=0x15; [10:6]=rd; [15:11]=a; [20:16]=b; [31:21]=0; }
inst zdivs(a: reg64, b: reg64)   { rd = sdiv(a, b); } enc(32) { [5:0]=0x16; [10:6]=rd; [15:11]=a; [20:16]=b; [31:21]=0; }
inst zld(a: reg64, k: imm12)     { rd = load(a + zext(k, 64), 64); } enc(32) { [5:0]=0x17; [10:6]=rd; [15:11]=a; [27:16]=k; [31:28]=0; }
inst zld1(a: reg64, k: imm12)    { rd = zext(load(a + zext(k, 64), 8), 64); } enc(32) { [5:0]=0x18; [10:6]=rd; [15:11]=a; [27:16]=k; [31:28]=0; }
inst zld1s(a: reg64, k: imm12)   { rd = sext(load(a + zext(k, 64), 8), 64); } enc(32) { [5:0]=0x19; [10:6]=rd; [15:11]=a; [27:16]=k; [31:28]=0; }
inst zldx(a: reg64, b: reg64)    { rd = load(a + b, 64); } enc(32) { [5:0]=0x1a; [10:6]=rd; [15:11]=a; [20:16]=b; [31:21]=0; }
inst zst(v: reg64, a: reg64, k: imm12)  { mem[a + zext(k, 64), 64] = v; } enc(32) { [5:0]=0x1b; [10:6]=v; [15:11]=a; [27:16]=k; [31:28]=0; }
inst zst1(v: reg64, a: reg64, k: imm12) { mem[a + zext(k, 64), 8] = trunc(v, 8); } enc(32) { [5:0]=0x1c; [10:6]=v; [15:11]=a; [27:16]=k; [31:28]=0; }
inst zjmp(off: imm20)            { pc = pc + sext(off, 64); } enc(32) { [5:0]=0x1d; [25:6]=off; [31:26]=0; }
inst zbnz(c: reg64, off: imm16)  { if (c != 0) { pc = pc + sext(off, 64); } } enc(32) { [5:0]=0x1e; [10:6]=c; [26:11]=off; [31:27]=0; }
inst zbz(c: reg64, off: imm16)   { if (c == 0) { pc = pc + sext(off, 64); } } enc(32) { [5:0]=0x1f; [10:6]=c; [26:11]=off; [31:27]=0; }
`

func main() {
	b := term.NewBuilder()
	target, err := isa.LoadTarget(b, "zeta", zetaSpec, map[string]int{
		"zld": 3, "zld1": 3, "zld1s": 3, "zldx": 3, "zmul": 3, "zdiv": 14, "zdivs": 14,
	}, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ZetaCore: %d instructions specified, zero selector code written\n",
		len(target.Insts))

	// Synthesize the rule library against the standard pattern corpus.
	synth := core.New(b, target, core.Config{TestInputs: 96, Workers: 4})
	synth.BuildPool()
	lib := rules.NewLibrary("zeta")
	synth.Synthesize(harness.CorpusPatterns("zeta", 0), lib)
	fmt.Printf("pool: %d sequences; synthesized %d rules (index %d, SMT %d)\n",
		synth.Stats.Sequences, lib.Len(), synth.Stats.IndexRules, synth.Stats.SMTRules)

	// Backend hooks: constants and branches still need the usual manual
	// glue (§VI-B: "a complete backend still requires additional
	// components").
	backend := &isel.Backend{Name: "zeta-synth", ISA: target, Lib: lib, Hooks: isel.Hooks{
		MatConst:    zetaMatConst,
		LowerBrCond: zetaBrCond,
		LowerInst:   zetaLowerInst,
	}}

	// Run the whole SPEC-analog suite on the brand-new backend.
	fmt.Println("\nworkload results (validated against the gMIR interpreter):")
	for _, w := range bench.Suite(1) {
		refMem := gmir.NewMemory()
		if w.InitMem != nil {
			w.InitMem(refMem)
		}
		ip := &gmir.Interp{Mem: refMem}
		want, err := ip.Run(w.Build(), w.Args...)
		if err != nil {
			log.Fatal(err)
		}
		f := w.Build()
		gmir.CSEConstants(f)
		gmir.LowerRem(f)
		gmir.LowerAbs(f)
		mf, rep := backend.Select(f)
		if rep.Fallback {
			fmt.Printf("  %-18s FALLBACK (%s)\n", w.Name, rep.FallbackReason)
			continue
		}
		mem := gmir.NewMemory()
		if w.InitMem != nil {
			w.InitMem(mem)
		}
		m := &sim.Machine{Mem: mem}
		res, err := m.Run(mf, w.Args)
		if err != nil {
			log.Fatal(err)
		}
		status := "✓"
		if sim.Adjust(res.Ret, 64) != want {
			status = "MISMATCH"
		}
		fmt.Printf("  %-18s %10d cycles  %6d bytes  %s\n",
			w.Name, res.Cycles, mf.BinarySize(), status)
	}
}

// zetaMatConst materializes constants with zaddk/zshl chains.
func zetaMatConst(c *isel.Ctx, v bv.BV) (mir.Reg, bool) {
	if v.W() > 64 {
		return 0, false
	}
	val := v.ZExt(64).Lo
	zero := c.NewReg() // never-written registers read as zero
	dst := c.NewReg()
	c.Emit(&mir.Inst{Meta: c.Inst("zaddk"), Dsts: []mir.Reg{dst},
		Args: []mir.Operand{mir.R(zero), mir.I(bv.New(16, val>>48))}})
	for _, sh := range []uint64{32, 16, 0} {
		chunk := val >> sh & 0xffff
		c.Emit(&mir.Inst{Meta: c.Inst("zshl"), Dsts: []mir.Reg{dst},
			Args: []mir.Operand{mir.R(dst), mir.I(bv.New(6, 16))}})
		if chunk != 0 {
			c.Emit(&mir.Inst{Meta: c.Inst("zaddk"), Dsts: []mir.Reg{dst},
				Args: []mir.Operand{mir.R(dst), mir.I(bv.New(16, chunk))}})
		}
	}
	return dst, true
}

// zetaBrCond branches on the boolean register.
func zetaBrCond(c *isel.Ctx, cond gmir.Value, taken int, invert bool) bool {
	name := "zbnz"
	if invert {
		name = "zbz"
	}
	c.Emit(&mir.Inst{Meta: c.Inst(name),
		Args:  []mir.Operand{mir.R(c.ValueReg(cond)), mir.I(bv.Zero(16))},
		Succs: []int{taken}})
	return true
}

// zetaLowerInst expands select via the mask idiom (ZetaCore has no
// conditional move either).
func zetaLowerInst(c *isel.Ctx, in *gmir.Inst) bool {
	pick := func(cond, x, y mir.Reg, dst mir.Reg) {
		mask := c.NewReg()
		xorv := c.NewReg()
		andv := c.NewReg()
		zero := c.NewReg()
		c.Emit(&mir.Inst{Meta: c.Inst("zrsub"), Dsts: []mir.Reg{mask},
			Args: []mir.Operand{mir.R(cond), mir.R(zero)}}) // 0 - cond
		c.Emit(&mir.Inst{Meta: c.Inst("zxor"), Dsts: []mir.Reg{xorv},
			Args: []mir.Operand{mir.R(x), mir.R(y)}})
		c.Emit(&mir.Inst{Meta: c.Inst("zand"), Dsts: []mir.Reg{andv},
			Args: []mir.Operand{mir.R(xorv), mir.R(mask)}})
		c.Emit(&mir.Inst{Meta: c.Inst("zxor"), Dsts: []mir.Reg{dst},
			Args: []mir.Operand{mir.R(y), mir.R(andv)}})
	}
	switch in.Op {
	case gmir.GSelect:
		pick(c.ValueReg(in.Args[0]), c.ValueReg(in.Args[1]), c.ValueReg(in.Args[2]),
			c.EnsureReg(in.Dst))
		return true
	case gmir.GUMin, gmir.GUMax, gmir.GSMin, gmir.GSMax:
		a, bb := c.ValueReg(in.Args[0]), c.ValueReg(in.Args[1])
		cond := c.NewReg()
		cmp := "zsetltu"
		if in.Op == gmir.GSMin || in.Op == gmir.GSMax {
			cmp = "zsetlt"
		}
		c.Emit(&mir.Inst{Meta: c.Inst(cmp), Dsts: []mir.Reg{cond},
			Args: []mir.Operand{mir.R(a), mir.R(bb)}})
		x, y := a, bb
		if in.Op == gmir.GUMax || in.Op == gmir.GSMax {
			x, y = bb, a
		}
		pick(cond, x, y, c.EnsureReg(in.Dst))
		return true
	}
	return false
}
