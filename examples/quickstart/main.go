// Quickstart: synthesize an instruction selector for a five-instruction
// toy ISA, end to end — specification, synthesis, selection, simulation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"iselgen/internal/bv"
	"iselgen/internal/core"
	"iselgen/internal/gmir"
	"iselgen/internal/isa"
	"iselgen/internal/isel"
	"iselgen/internal/mir"
	"iselgen/internal/pattern"
	"iselgen/internal/rules"
	"iselgen/internal/sim"
	"iselgen/internal/term"
)

// Step 1 — a formal ISA specification in the spec DSL. Each instruction
// declares operands and describes its effects; the framework symbolically
// executes the bodies into bitvector terms (the role SAIL + ISLA play in
// the paper).
const toySpec = `
inst ADD(a: reg64, b: reg64)   { rd = a + b; }
inst ADDI(a: reg64, imm: imm12){ rd = a + zext(imm, 64); }
inst SHL(a: reg64, sh: imm6)   { rd = a << zext(sh, 64); }
inst SHADD(a: reg64, b: reg64, sh: imm6) { rd = a + (b << zext(sh, 64)); }
inst LDR(a: reg64, imm: imm12) { rd = load(a + zext(imm, 64), 64); }
`

func main() {
	// Step 2 — load the target: parse + symbolically execute the spec.
	b := term.NewBuilder()
	target, err := isa.LoadTarget(b, "toy", toySpec, nil, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d instructions\n", len(target.Insts))

	// Step 3 — build the synthesis pool: enumerate instruction sequences,
	// canonicalize their effects, index them, cache test evaluations.
	synth := core.New(b, target, core.Config{TestInputs: 64, Workers: 2})
	synth.BuildPool()
	fmt.Printf("pool: %d sequences, %d indexed\n",
		synth.Stats.Sequences, synth.Stats.IndexEntries)

	// Step 4 — ask for rules covering the IR patterns we care about.
	r64 := func() *pattern.Node { return pattern.Leaf(gmir.S64) }
	i64 := func() *pattern.Node { return pattern.ImmLeaf(gmir.S64) }
	patterns := []*pattern.Pattern{
		pattern.New(pattern.Op(gmir.GAdd, gmir.S64, r64(), r64())),
		pattern.New(pattern.Op(gmir.GAdd, gmir.S64, r64(), i64())),
		pattern.New(pattern.Op(gmir.GShl, gmir.S64, r64(), i64())),
		// The paper's running example: shift-and-add folds into SHADD.
		pattern.New(pattern.Op(gmir.GAdd, gmir.S64, r64(),
			pattern.Op(gmir.GShl, gmir.S64, r64(), i64()))),
		pattern.New(pattern.LoadOp(gmir.GLoad, gmir.S64, 64,
			pattern.Op(gmir.GPtrAdd, gmir.P0, r64(), i64()))),
		pattern.New(pattern.Op(gmir.GPtrAdd, gmir.P0, r64(), i64())),
		pattern.New(pattern.Op(gmir.GPtrAdd, gmir.P0, r64(), r64())),
	}
	lib := rules.NewLibrary("toy")
	synth.Synthesize(patterns, lib)
	fmt.Printf("synthesized %d rules:\n", lib.Len())
	for _, r := range lib.Rules {
		fmt.Printf("  %s\n", r)
	}

	// Step 5 — use the rules to select a function:
	//   f(p, x) = load(p+8) + (x << 4)
	fb := gmir.NewFunc("f")
	p := fb.Param(gmir.P0)
	x := fb.Param(gmir.S64)
	addr := fb.PtrAdd(p, fb.Const(gmir.S64, 8))
	v := fb.Load(gmir.S64, addr, 64)
	sh := fb.Shl(x, fb.Const(gmir.S64, 4))
	fb.Ret(fb.Add(v, sh))
	f := fb.MustFinish()

	backend := &isel.Backend{Name: "toy-synth", ISA: target, Lib: lib,
		Hooks: isel.Hooks{
			MatConst: func(c *isel.Ctx, v bv.BV) (mir.Reg, bool) {
				// Toy materializer: ADDI from an unwritten (zero) register.
				if v.W() > 64 || v.ZExt(64).Lo > 4095 {
					return 0, false
				}
				zero := c.NewReg()
				dst := c.NewReg()
				c.Emit(&mir.Inst{Meta: c.Inst("ADDI"), Dsts: []mir.Reg{dst},
					Args: []mir.Operand{mir.R(zero), mir.I(v.ZExt(64).Trunc(12))}})
				return dst, true
			},
		}}
	mf, report := backend.Select(f)
	if report.Fallback {
		log.Fatalf("selection fell back: %s", report.FallbackReason)
	}
	fmt.Printf("\nselected machine code:\n%s", mf)

	// Step 6 — run it on the simulator and cross-check the interpreter.
	mem := gmir.NewMemory()
	mem.Store(0x1008, bv.New(64, 100), 64)
	m := &sim.Machine{Mem: mem}
	res, err := m.Run(mf, []bv.BV{bv.New(64, 0x1000), bv.New(64, 3)})
	if err != nil {
		log.Fatal(err)
	}
	ipMem := gmir.NewMemory()
	ipMem.Store(0x1008, bv.New(64, 100), 64)
	ip := &gmir.Interp{Mem: ipMem}
	want, _ := ip.Run(f, bv.New(64, 0x1000), bv.New(64, 3))
	fmt.Printf("\nsimulated result: %v (cycles %d) — interpreter says %v\n",
		res.Ret, res.Cycles, want)
	if res.Ret != want {
		log.Fatal("MISMATCH")
	}
	fmt.Println("results agree ✓")
}
